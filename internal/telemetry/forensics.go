package telemetry

import (
	"math"
	"sort"

	"twolevel/internal/automaton"
	"twolevel/internal/history"
	"twolevel/internal/trace"
)

// Forensics is the mispredict flight recorder and hard-to-predict (H2P)
// branch profiler: an Observer that, beyond counting misses per static
// branch, records *why* they happen — the per-history-pattern outcome
// histograms, shadow automaton-state transitions, warmup-vs-steady miss
// split and history-register entropy that let a report name the dominant
// miss pattern of a branch instead of just ranking it.
//
// The shadow model is a PAg-style local history register of HistoryBits
// bits per static branch feeding one A2 (2-bit saturating counter)
// automaton per (branch, pattern). It deliberately does not mirror the
// predictor under test: it is a fixed forensic reference, so reports from
// different schemes over the same trace are directly comparable. Miss
// counts, by contrast, come from the real run (the correct flag of
// OnResolve), so the report attributes the predictor's actual misses to
// the history patterns they occurred under.
//
// A bounded flight recorder keeps the last RecorderSize resolutions; when
// mispredictions cluster (a burst: at least BurstThreshold misses inside
// the recorder window), the window is snapshotted — at most MaxSnapshots
// per run, at least RecorderSize resolutions apart — so the exact event
// sequence around the worst stretches of a run survives into the report.
//
// Everything Forensics collects is a pure function of the event sequence:
// two identical runs produce identical (and identically ordered) reports.
type Forensics struct {
	NopObserver
	cfg     ForensicsConfig
	machine *automaton.Machine
	warmupN uint64 // resolutions counted as warmup

	seq       uint64 // resolutions so far
	misses    uint64
	pcs       map[uint32]*pcForensics
	ring      []FlightEvent
	ringStart uint64 // seq of the oldest ring entry
	ringMiss  int    // mispredicts currently inside the ring
	lastSnap  uint64 // seq at the last snapshot (0 = none yet)
	snapshots []FlightSnapshot
}

// ForensicsConfig configures a Forensics observer. The zero value selects
// the defaults documented per field.
type ForensicsConfig struct {
	// TopK bounds the offender list of the report (default 8).
	TopK int
	// HistoryBits is the shadow local-history length (default 8).
	HistoryBits int
	// RecorderSize is the flight-recorder window in resolutions
	// (default 64).
	RecorderSize int
	// BurstThreshold is the misprediction count inside the recorder
	// window that triggers a snapshot (default RecorderSize/4).
	BurstThreshold int
	// MaxSnapshots bounds the snapshots kept per run (default 4).
	MaxSnapshots int
	// Budget is the run's conditional branch budget; the first
	// WarmupFrac of it counts as warmup in the miss split. 0 means
	// unknown: every miss is then counted as steady-state.
	Budget uint64
	// WarmupFrac is the warmup share of Budget (default 0.1).
	WarmupFrac float64
}

func (c ForensicsConfig) withDefaults() ForensicsConfig {
	if c.TopK <= 0 {
		c.TopK = 8
	}
	if c.HistoryBits <= 0 {
		c.HistoryBits = 8
	}
	if c.HistoryBits > history.MaxBits {
		c.HistoryBits = history.MaxBits
	}
	if c.RecorderSize <= 0 {
		c.RecorderSize = 64
	}
	if c.BurstThreshold <= 0 {
		c.BurstThreshold = max(1, c.RecorderSize/4)
	}
	if c.MaxSnapshots <= 0 {
		c.MaxSnapshots = 4
	}
	if c.WarmupFrac <= 0 || c.WarmupFrac >= 1 {
		c.WarmupFrac = 0.1
	}
	return c
}

// pcForensics is the per-static-branch working state.
type pcForensics struct {
	exec, taken, miss uint64
	warmupMiss        uint64
	hist              history.Register
	patterns          map[uint32]*patternCount
	states            map[uint32]automaton.State
	transitions       [][2]uint64 // [state][outcome] counts
}

type patternCount struct {
	taken, notTaken, miss uint64
}

// NewForensics returns a forensics observer with cfg's defaults applied.
func NewForensics(cfg ForensicsConfig) *Forensics {
	cfg = cfg.withDefaults()
	f := &Forensics{
		cfg:     cfg,
		machine: automaton.New(automaton.A2),
		pcs:     make(map[uint32]*pcForensics),
		ring:    make([]FlightEvent, 0, cfg.RecorderSize),
	}
	if cfg.Budget > 0 {
		f.warmupN = uint64(float64(cfg.Budget) * cfg.WarmupFrac)
	}
	return f
}

// OnResolve implements Observer.
func (f *Forensics) OnResolve(b trace.Branch, predicted, correct bool) {
	f.seq++
	p := f.pcs[b.PC]
	if p == nil {
		p = &pcForensics{
			hist:        history.New(f.cfg.HistoryBits),
			patterns:    make(map[uint32]*patternCount),
			states:      make(map[uint32]automaton.State),
			transitions: make([][2]uint64, f.machine.States()),
		}
		f.pcs[b.PC] = p
	}
	pattern := p.hist.Pattern()
	pc := p.patterns[pattern]
	if pc == nil {
		pc = &patternCount{}
		p.patterns[pattern] = pc
	}
	st, ok := p.states[pattern]
	if !ok {
		st = f.machine.Initial()
	}
	outcome := 0
	if b.Taken {
		outcome = 1
	}
	p.transitions[st][outcome]++
	p.states[pattern] = f.machine.Next(st, b.Taken)

	p.exec++
	if b.Taken {
		p.taken++
		pc.taken++
	} else {
		pc.notTaken++
	}
	if !correct {
		p.miss++
		pc.miss++
		f.misses++
		if f.warmupN > 0 && f.seq <= f.warmupN {
			p.warmupMiss++
		}
	}
	p.hist.Shift(b.Taken)

	f.record(FlightEvent{
		Seq:       f.seq,
		PC:        b.PC,
		Taken:     b.Taken,
		Predicted: predicted,
		Correct:   correct,
	})
}

// record appends to the flight recorder and snapshots mispredict bursts.
func (f *Forensics) record(e FlightEvent) {
	if len(f.ring) == f.cfg.RecorderSize {
		if !f.ring[0].Correct {
			f.ringMiss--
		}
		copy(f.ring, f.ring[1:])
		f.ring = f.ring[:len(f.ring)-1]
		f.ringStart++
	}
	f.ring = append(f.ring, e)
	if !e.Correct {
		f.ringMiss++
	}
	if e.Correct || f.ringMiss < f.cfg.BurstThreshold {
		return
	}
	if len(f.snapshots) >= f.cfg.MaxSnapshots {
		return
	}
	// Space snapshots at least one full window apart so a long burst
	// yields one picture, not MaxSnapshots copies of the same stretch.
	if f.lastSnap != 0 && e.Seq-f.lastSnap < uint64(f.cfg.RecorderSize) {
		return
	}
	f.lastSnap = e.Seq
	f.snapshots = append(f.snapshots, FlightSnapshot{
		TriggerSeq:  e.Seq,
		Mispredicts: f.ringMiss,
		Events:      append([]FlightEvent(nil), f.ring...),
	})
}

// FlightEvent is one resolution in the flight recorder.
type FlightEvent struct {
	// Seq is the 1-based resolution index within the run.
	Seq uint64 `json:"seq"`
	// PC is the branch address.
	PC uint32 `json:"pc"`
	// Taken is the real outcome; Predicted the predictor's call.
	Taken     bool `json:"taken"`
	Predicted bool `json:"predicted"`
	// Correct is Predicted == Taken.
	Correct bool `json:"correct"`
}

// FlightSnapshot is the recorder window captured at one mispredict burst.
type FlightSnapshot struct {
	// TriggerSeq is the resolution index of the miss that triggered the
	// snapshot (the last event of the window).
	TriggerSeq uint64 `json:"trigger_seq"`
	// Mispredicts is the number of misses inside the window.
	Mispredicts int `json:"mispredicts"`
	// Events is the window, oldest first.
	Events []FlightEvent `json:"events"`
}

// PatternStat is one row of a branch's per-history-pattern histogram.
type PatternStat struct {
	// Pattern is the shadow history pattern as a bit string, oldest
	// outcome first (1 = taken).
	Pattern string `json:"pattern"`
	// Taken and NotTaken count real outcomes observed under the pattern.
	Taken    uint64 `json:"taken"`
	NotTaken uint64 `json:"not_taken"`
	// Mispredicts counts the run's real misses under the pattern.
	Mispredicts uint64 `json:"mispredicts"`
	// MissRate is Mispredicts over the pattern's occurrences.
	MissRate float64 `json:"miss_rate"`
}

// Occurrences returns how many resolutions happened under the pattern.
func (p PatternStat) Occurrences() uint64 { return p.Taken + p.NotTaken }

// TakenRate returns the taken fraction under the pattern (0 when never
// observed).
func (p PatternStat) TakenRate() float64 {
	if n := p.Occurrences(); n > 0 {
		return float64(p.Taken) / float64(n)
	}
	return 0
}

// StateTransition counts one edge of the shadow A2 automaton for a branch.
type StateTransition struct {
	// From is the automaton state the edge leaves ("SN", "WN", "WT",
	// "ST" for A2).
	From string `json:"from"`
	// Outcome is the resolved direction taking the edge.
	Outcome string `json:"outcome"`
	// To is the successor state.
	To string `json:"to"`
	// Count is how often the edge was taken.
	Count uint64 `json:"count"`
}

// PCForensics is the full forensic profile of one static branch.
type PCForensics struct {
	// PC is the branch address.
	PC uint32 `json:"pc"`
	// Executions, Mispredicts, TakenRate and MissShare mirror the
	// hot-branch table.
	Executions  uint64  `json:"executions"`
	Mispredicts uint64  `json:"mispredicts"`
	TakenRate   float64 `json:"taken_rate"`
	MissShare   float64 `json:"miss_share"`
	// WarmupMisses and SteadyMisses split the misses at the warmup
	// boundary (first WarmupFrac of Budget). With Budget unknown every
	// miss is steady.
	WarmupMisses uint64 `json:"warmup_misses"`
	SteadyMisses uint64 `json:"steady_misses"`
	// HistoryEntropyBits is the Shannon entropy of the branch's shadow
	// history-pattern distribution: 0 means one pattern covers every
	// execution; HistoryBits means the patterns are uniformly spread.
	HistoryEntropyBits float64 `json:"history_entropy_bits"`
	// PatternsSeen is the number of distinct shadow patterns observed.
	PatternsSeen int `json:"patterns_seen"`
	// DominantPattern is the pattern carrying the most misses (empty
	// when the branch never missed); DominantPatternMisses its count.
	DominantPattern       string `json:"dominant_pattern,omitempty"`
	DominantPatternMisses uint64 `json:"dominant_pattern_misses,omitempty"`
	// Patterns is the per-pattern histogram, ordered by mispredicts
	// descending, then pattern value ascending. Bounded to the
	// patternsPerPC worst rows.
	Patterns []PatternStat `json:"patterns"`
	// Transitions are the shadow automaton edge counts, ordered by
	// state then outcome. Edges never taken are omitted.
	Transitions []StateTransition `json:"transitions"`
}

// ForensicsReport is the per-run product of a Forensics observer.
type ForensicsReport struct {
	// HistoryBits is the shadow history length the report was built with.
	HistoryBits int `json:"history_bits"`
	// Resolutions and Mispredicts count the run's conditional branches.
	Resolutions uint64 `json:"resolutions"`
	Mispredicts uint64 `json:"mispredicts"`
	// StaticBranches is the number of distinct branch sites observed.
	StaticBranches int `json:"static_branches"`
	// WarmupResolutions is the warmup boundary used for the miss split
	// (0 = unknown budget, no warmup attribution).
	WarmupResolutions uint64 `json:"warmup_resolutions"`
	// TopOffenders profiles the worst branches by misprediction count,
	// ordered by mispredicts descending then PC ascending.
	TopOffenders []PCForensics `json:"top_offenders"`
	// Snapshots are the flight-recorder windows captured at mispredict
	// bursts, in run order.
	Snapshots []FlightSnapshot `json:"snapshots,omitempty"`
}

// patternsPerPC bounds the per-branch histogram rows in a report.
const patternsPerPC = 16

// stateName names an A2 state for reports.
func stateName(s automaton.State) string {
	switch s {
	case 0:
		return "SN"
	case 1:
		return "WN"
	case 2:
		return "WT"
	case 3:
		return "ST"
	}
	return "S?"
}

// patternString renders a k-bit pattern as a bit string, oldest first.
func patternString(pattern uint32, k int) string {
	buf := make([]byte, k)
	for i := 0; i < k; i++ {
		if pattern>>(k-1-i)&1 == 1 {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}

// TotalMispredicts returns the run's misprediction count so far.
func (f *Forensics) TotalMispredicts() uint64 { return f.misses }

// Lookup returns the forensic profile of one static branch, or false when
// the branch was never observed. It is not bounded by TopK.
func (f *Forensics) Lookup(pc uint32) (PCForensics, bool) {
	p, ok := f.pcs[pc]
	if !ok {
		return PCForensics{}, false
	}
	return f.profile(pc, p), true
}

// Report assembles the forensics report: the TopK worst offenders plus
// the burst snapshots. Ordering is fully deterministic.
func (f *Forensics) Report() ForensicsReport {
	rep := ForensicsReport{
		HistoryBits:       f.cfg.HistoryBits,
		Resolutions:       f.seq,
		Mispredicts:       f.misses,
		StaticBranches:    len(f.pcs),
		WarmupResolutions: f.warmupN,
		Snapshots:         f.snapshots,
	}
	type ranked struct {
		pc   uint32
		miss uint64
	}
	all := make([]ranked, 0, len(f.pcs))
	for pc, p := range f.pcs {
		all = append(all, ranked{pc: pc, miss: p.miss})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].miss != all[j].miss {
			return all[i].miss > all[j].miss
		}
		return all[i].pc < all[j].pc
	})
	if len(all) > f.cfg.TopK {
		all = all[:f.cfg.TopK]
	}
	for _, r := range all {
		rep.TopOffenders = append(rep.TopOffenders, f.profile(r.pc, f.pcs[r.pc]))
	}
	return rep
}

// profile builds the report row for one branch.
func (f *Forensics) profile(pc uint32, p *pcForensics) PCForensics {
	out := PCForensics{
		PC:           pc,
		Executions:   p.exec,
		Mispredicts:  p.miss,
		WarmupMisses: p.warmupMiss,
		SteadyMisses: p.miss - p.warmupMiss,
		PatternsSeen: len(p.patterns),
	}
	if p.exec > 0 {
		out.TakenRate = float64(p.taken) / float64(p.exec)
	}
	if f.misses > 0 {
		out.MissShare = float64(p.miss) / float64(f.misses)
	}

	type patRow struct {
		pattern uint32
		c       *patternCount
	}
	rows := make([]patRow, 0, len(p.patterns))
	for pattern, c := range p.patterns {
		rows = append(rows, patRow{pattern: pattern, c: c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].c.miss != rows[j].c.miss {
			return rows[i].c.miss > rows[j].c.miss
		}
		return rows[i].pattern < rows[j].pattern
	})
	// Entropy is summed in sorted order so the floating-point result is
	// identical across runs despite map iteration order.
	for _, r := range rows {
		n := r.c.taken + r.c.notTaken
		if n > 0 {
			prob := float64(n) / float64(p.exec)
			out.HistoryEntropyBits -= prob * math.Log2(prob)
		}
	}
	// Avoid -0 for single-pattern branches.
	out.HistoryEntropyBits = math.Abs(out.HistoryEntropyBits)
	if len(rows) > 0 && rows[0].c.miss > 0 {
		out.DominantPattern = patternString(rows[0].pattern, f.cfg.HistoryBits)
		out.DominantPatternMisses = rows[0].c.miss
	}
	if len(rows) > patternsPerPC {
		rows = rows[:patternsPerPC]
	}
	for _, r := range rows {
		ps := PatternStat{
			Pattern:     patternString(r.pattern, f.cfg.HistoryBits),
			Taken:       r.c.taken,
			NotTaken:    r.c.notTaken,
			Mispredicts: r.c.miss,
		}
		if n := ps.Occurrences(); n > 0 {
			ps.MissRate = float64(ps.Mispredicts) / float64(n)
		}
		out.Patterns = append(out.Patterns, ps)
	}

	for st := range p.transitions {
		for outcome := 0; outcome < 2; outcome++ {
			n := p.transitions[st][outcome]
			if n == 0 {
				continue
			}
			from := automaton.State(st)
			dir := "not-taken"
			taken := false
			if outcome == 1 {
				dir = "taken"
				taken = true
			}
			out.Transitions = append(out.Transitions, StateTransition{
				From:    stateName(from),
				Outcome: dir,
				To:      stateName(f.machine.Next(from, taken)),
				Count:   n,
			})
		}
	}
	return out
}
