package telemetry

import (
	"strings"
	"testing"
)

func TestWriteMetricsFormat(t *testing.T) {
	ms := []Metric{
		CounterMetric("demo_total", "A counter.", 7),
		GaugeMetric("demo_gauge", "A gauge.", 1.5),
		{Name: "demo_state", Help: "Labelled family.", Kind: GaugeKind, Gauge: 1, Labels: `worker="0",state="idle"`},
		{Name: "demo_state", Help: "Labelled family.", Kind: GaugeKind, Gauge: 1, Labels: `worker="1",state="run"`},
	}
	var sb strings.Builder
	WriteMetrics(&sb, "", ms)
	want := "# HELP demo_total A counter.\n# TYPE demo_total counter\ndemo_total 7\n" +
		"# HELP demo_gauge A gauge.\n# TYPE demo_gauge gauge\ndemo_gauge 1.5\n" +
		"# HELP demo_state Labelled family.\n# TYPE demo_state gauge\n" +
		"demo_state{worker=\"0\",state=\"idle\"} 1\n" +
		"demo_state{worker=\"1\",state=\"run\"} 1\n"
	if sb.String() != want {
		t.Errorf("WriteMetrics:\n got %q\nwant %q", sb.String(), want)
	}
}

func TestWriteMetricsScopeMerge(t *testing.T) {
	ms := []Metric{
		CounterMetric("demo_total", "A counter.", 3),
		{Name: "demo_state", Help: "Labelled.", Kind: GaugeKind, Gauge: 1, Labels: `state="idle"`},
	}
	var sb strings.Builder
	WriteMetrics(&sb, `tenant="acme"`, ms)
	if !strings.Contains(sb.String(), "demo_total{tenant=\"acme\"} 3\n") {
		t.Errorf("scope label missing:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "demo_state{tenant=\"acme\",state=\"idle\"} 1\n") {
		t.Errorf("merged clause missing:\n%s", sb.String())
	}
}

func TestWriteMetricsHeaderOnly(t *testing.T) {
	var sb strings.Builder
	WriteMetrics(&sb, "", []Metric{{Name: "demo_state", Help: "Empty family.", Kind: GaugeKind, HeaderOnly: true}})
	want := "# HELP demo_state Empty family.\n# TYPE demo_state gauge\n"
	if sb.String() != want {
		t.Errorf("header-only:\n got %q\nwant %q", sb.String(), want)
	}
}

func TestRegistryScopes(t *testing.T) {
	r := NewRegistry()
	r.Register(func() []Metric { return []Metric{CounterMetric("proc_total", "Process counter.", 1)} })
	r.RegisterTenant("beta", func() []Metric { return []Metric{CounterMetric("ten_total", "Tenant counter.", 2)} })
	r.RegisterTenant("acme", func() []Metric { return []Metric{CounterMetric("ten_total", "Tenant counter.", 9)} })

	var all strings.Builder
	r.WriteAll(&all)
	got := all.String()
	if !strings.Contains(got, "proc_total 1\n") {
		t.Errorf("process scope missing:\n%s", got)
	}
	acme := strings.Index(got, `ten_total{tenant="acme"} 9`)
	beta := strings.Index(got, `ten_total{tenant="beta"} 2`)
	if acme < 0 || beta < 0 || acme > beta {
		t.Errorf("tenants missing or unsorted (acme@%d beta@%d):\n%s", acme, beta, got)
	}

	var one strings.Builder
	if !r.WriteTenant(&one, "acme") {
		t.Fatal("WriteTenant(acme) reported no sources")
	}
	if !strings.Contains(one.String(), `ten_total{tenant="acme"} 9`) {
		t.Errorf("tenant view:\n%s", one.String())
	}
	if r.WriteTenant(&one, "ghost") {
		t.Error("WriteTenant(ghost) claimed sources exist")
	}
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.Register(func() []Metric {
		return []Metric{
			CounterMetric("proc_total", "P.", 4),
			{Name: "state", Help: "S.", Kind: GaugeKind, HeaderOnly: true},
		}
	})
	r.RegisterTenant("acme", func() []Metric { return []Metric{GaugeMetric("g", "G.", 2.5)} })
	doc := r.JSON()
	server := doc["server"].(map[string]any)
	if server["proc_total"] != uint64(4) {
		t.Errorf("server values = %v", server)
	}
	if _, ok := server["state"]; ok {
		t.Error("header-only row leaked into JSON values")
	}
	tenants := doc["tenants"].(map[string]map[string]any)
	if tenants["acme"]["g"] != 2.5 {
		t.Errorf("tenant values = %v", tenants)
	}
}
