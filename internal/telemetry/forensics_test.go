package telemetry

import (
	"encoding/json"
	"reflect"
	"testing"

	"twolevel/internal/trace"
)

// feed delivers one resolution of pc with the given outcome/correctness.
func feed(f *Forensics, pc uint32, taken, correct bool) {
	b := trace.Branch{PC: pc, Class: trace.Cond, Taken: taken}
	f.OnResolve(b, taken == correct, correct)
}

func TestForensicsPatternHistogram(t *testing.T) {
	f := NewForensics(ForensicsConfig{HistoryBits: 2, TopK: 4})
	// Strictly alternating outcomes: after the smeared start the shadow
	// history settles into the two alternating patterns 01 and 10.
	for i := 0; i < 40; i++ {
		feed(f, 0x100, i%2 == 0, i >= 4) // first 4 resolutions miss
	}
	rep := f.Report()
	if rep.Resolutions != 40 || rep.Mispredicts != 4 {
		t.Fatalf("counts: %d resolutions, %d misses", rep.Resolutions, rep.Mispredicts)
	}
	if rep.StaticBranches != 1 || len(rep.TopOffenders) != 1 {
		t.Fatalf("offenders: %+v", rep.TopOffenders)
	}
	pcf := rep.TopOffenders[0]
	if pcf.PC != 0x100 || pcf.Executions != 40 || pcf.Mispredicts != 4 {
		t.Fatalf("profile: %+v", pcf)
	}
	if pcf.DominantPattern == "" || pcf.DominantPatternMisses == 0 {
		t.Fatalf("dominant pattern missing: %+v", pcf)
	}
	// The alternating steady state visits patterns 01 and 10; entropy
	// must be near 1 bit and far from 0 and from the 2-bit maximum.
	if pcf.HistoryEntropyBits < 0.7 || pcf.HistoryEntropyBits > 1.3 {
		t.Errorf("entropy = %v bits, want ~1", pcf.HistoryEntropyBits)
	}
	var occ uint64
	for _, p := range pcf.Patterns {
		occ += p.Occurrences()
	}
	if occ != 40 {
		t.Errorf("pattern occurrences sum to %d, want 40", occ)
	}
}

func TestForensicsSteadyBranchHasZeroEntropy(t *testing.T) {
	f := NewForensics(ForensicsConfig{HistoryBits: 4})
	for i := 0; i < 50; i++ {
		feed(f, 0x200, true, true) // always taken, never missed
	}
	pcf, ok := f.Lookup(0x200)
	if !ok {
		t.Fatal("branch not tracked")
	}
	if pcf.HistoryEntropyBits != 0 {
		t.Errorf("single-pattern entropy = %v, want 0", pcf.HistoryEntropyBits)
	}
	if pcf.PatternsSeen != 1 {
		t.Errorf("patterns seen = %d, want 1", pcf.PatternsSeen)
	}
	if pcf.DominantPattern != "" {
		t.Errorf("never-missing branch has dominant miss pattern %q", pcf.DominantPattern)
	}
}

func TestForensicsWarmupSplit(t *testing.T) {
	f := NewForensics(ForensicsConfig{Budget: 100, WarmupFrac: 0.1})
	for i := 0; i < 100; i++ {
		// Misses at resolutions 1..5 (warmup covers 1..10) and 51..53.
		miss := i < 5 || (i >= 50 && i < 53)
		feed(f, 0x300, true, !miss)
	}
	rep := f.Report()
	if rep.WarmupResolutions != 10 {
		t.Fatalf("warmup boundary = %d, want 10", rep.WarmupResolutions)
	}
	pcf := rep.TopOffenders[0]
	if pcf.WarmupMisses != 5 || pcf.SteadyMisses != 3 {
		t.Fatalf("split = %d warmup / %d steady, want 5/3", pcf.WarmupMisses, pcf.SteadyMisses)
	}
}

func TestForensicsUnknownBudgetCountsAllSteady(t *testing.T) {
	f := NewForensics(ForensicsConfig{})
	for i := 0; i < 20; i++ {
		feed(f, 0x300, true, i >= 5)
	}
	pcf, _ := f.Lookup(0x300)
	if pcf.WarmupMisses != 0 || pcf.SteadyMisses != 5 {
		t.Fatalf("unknown budget split = %d/%d, want 0/5", pcf.WarmupMisses, pcf.SteadyMisses)
	}
}

func TestForensicsBurstSnapshots(t *testing.T) {
	f := NewForensics(ForensicsConfig{RecorderSize: 8, BurstThreshold: 4, MaxSnapshots: 2})
	// Quiet stretch, then a dense burst, then quiet, then another burst.
	for i := 0; i < 20; i++ {
		feed(f, 0x10, true, true)
	}
	for i := 0; i < 6; i++ {
		feed(f, 0x20, true, false)
	}
	for i := 0; i < 30; i++ {
		feed(f, 0x10, true, true)
	}
	for i := 0; i < 6; i++ {
		feed(f, 0x20, true, false)
	}
	// A third burst must be dropped by the MaxSnapshots bound.
	for i := 0; i < 30; i++ {
		feed(f, 0x10, true, true)
	}
	for i := 0; i < 6; i++ {
		feed(f, 0x20, true, false)
	}
	rep := f.Report()
	if len(rep.Snapshots) != 2 {
		t.Fatalf("snapshots = %d, want 2 (MaxSnapshots bound)", len(rep.Snapshots))
	}
	s := rep.Snapshots[0]
	if s.Mispredicts < 4 {
		t.Errorf("burst snapshot has %d misses, want >= threshold 4", s.Mispredicts)
	}
	if len(s.Events) == 0 || len(s.Events) > 8 {
		t.Errorf("snapshot window = %d events, want within recorder size 8", len(s.Events))
	}
	last := s.Events[len(s.Events)-1]
	if last.Seq != s.TriggerSeq || last.Correct {
		t.Errorf("snapshot must end at the triggering miss: %+v vs trigger %d", last, s.TriggerSeq)
	}
	if rep.Snapshots[1].TriggerSeq <= rep.Snapshots[0].TriggerSeq {
		t.Errorf("snapshots out of run order: %+v", rep.Snapshots)
	}
}

func TestForensicsReportDeterministic(t *testing.T) {
	run := func() ForensicsReport {
		f := NewForensics(ForensicsConfig{HistoryBits: 3, TopK: 8, Budget: 1000})
		// Several interleaved branches with tied miss counts exercise
		// every sort in the report.
		for i := 0; i < 500; i++ {
			feed(f, uint32(0x100+(i%5)*0x10), i%3 == 0, i%7 != 0)
		}
		return f.Report()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical runs produced different reports")
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatal("identical runs produced different JSON")
	}
}

func TestForensicsTransitionsCoverEveryResolution(t *testing.T) {
	f := NewForensics(ForensicsConfig{HistoryBits: 2})
	for i := 0; i < 200; i++ {
		feed(f, 0x40, i%4 < 2, i%5 != 0)
	}
	pcf, _ := f.Lookup(0x40)
	var total uint64
	for _, tr := range pcf.Transitions {
		if tr.From == "" || tr.To == "" || (tr.Outcome != "taken" && tr.Outcome != "not-taken") {
			t.Fatalf("malformed transition: %+v", tr)
		}
		total += tr.Count
	}
	if total != 200 {
		t.Fatalf("transition counts sum to %d, want 200 (one edge per resolution)", total)
	}
}

func TestForensicsTopKBoundAndLookupBeyondIt(t *testing.T) {
	f := NewForensics(ForensicsConfig{TopK: 2})
	for pc := uint32(1); pc <= 5; pc++ {
		for i := uint32(0); i < 10; i++ {
			feed(f, pc*0x100, true, i >= pc) // pc misses scale with pc
		}
	}
	rep := f.Report()
	if len(rep.TopOffenders) != 2 {
		t.Fatalf("top offenders = %d, want 2", len(rep.TopOffenders))
	}
	if rep.TopOffenders[0].PC != 0x500 || rep.TopOffenders[1].PC != 0x400 {
		t.Fatalf("offender order: %#x, %#x", rep.TopOffenders[0].PC, rep.TopOffenders[1].PC)
	}
	if _, ok := f.Lookup(0x100); !ok {
		t.Fatal("Lookup must reach branches outside TopK")
	}
}
