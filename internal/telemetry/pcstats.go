package telemetry

// PCStats is one row of the kernel-native per-branch mispredict profile:
// the counters a streaming forensics verdict needs, cheap enough to
// accumulate inside the flat replay kernel (no pattern histograms, no
// shadow automata — see Forensics for the full-evidence profile).
type PCStats struct {
	// PC is the branch address.
	PC uint32 `json:"pc"`
	// Executions counts resolved dynamic instances of this branch.
	Executions uint64 `json:"executions"`
	// Taken counts taken instances.
	Taken uint64 `json:"taken"`
	// Mispredicts counts wrong predictions for this branch.
	Mispredicts uint64 `json:"mispredicts"`
	// WarmupMisses counts mispredicts in the run's warmup prefix (the
	// first tenth of the branch budget, matching ForensicsConfig's
	// default split; 0 when the budget is unknown).
	WarmupMisses uint64 `json:"warmup_misses"`
	// TakenRate is Taken / Executions.
	TakenRate float64 `json:"taken_rate"`
	// MissShare is this branch's share of all mispredictions in the run.
	MissShare float64 `json:"miss_share"`
}
