package spec

import (
	"testing"

	"twolevel/internal/rng"
)

// Robustness: the parser must never panic, whatever the input — it is
// fed directly from command-line flags.

func randomSpecString(r *rng.RNG) string {
	alphabet := []byte("GAPSBTbpgs(),^x0123456789-srinfHRLc ")
	n := r.Intn(60)
	out := make([]byte, n)
	for i := range out {
		out[i] = alphabet[r.Intn(len(alphabet))]
	}
	return string(out)
}

func TestParseNeverPanicsOnRandomInput(t *testing.T) {
	r := rng.New(20260705)
	for i := 0; i < 20000; i++ {
		s := randomSpecString(r)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Parse(%q) panicked: %v", s, p)
				}
			}()
			sp, err := Parse(s)
			if err == nil {
				// Anything accepted must round-trip through its own
				// canonical form.
				again, err2 := Parse(sp.String())
				if err2 != nil {
					t.Fatalf("canonical form %q of %q does not re-parse: %v", sp.String(), s, err2)
				}
				if again.String() != sp.String() {
					t.Fatalf("canonical form not a fixed point: %q -> %q", sp.String(), again.String())
				}
			}
		}()
	}
}

func TestParseNeverPanicsOnMutatedValidSpecs(t *testing.T) {
	// Mutations of valid specs exercise deeper parser paths than pure
	// noise does.
	r := rng.New(42)
	valid := []string{
		"PAg(BHT(512,4,12-sr),1xPHT(2^12,A2),c)",
		"GAp(HR(1,,8-sr),512xPHT(2^8,A2))",
		"BTB(BHT(512,4,LT),)",
		"PSg(BHT(512,4,12-sr),1xPHT(2^12,PB))",
	}
	for i := 0; i < 20000; i++ {
		s := []byte(valid[r.Intn(len(valid))])
		// Flip, delete or insert a couple of characters.
		for m := 0; m < 1+r.Intn(3); m++ {
			if len(s) == 0 {
				break
			}
			pos := r.Intn(len(s))
			switch r.Intn(3) {
			case 0:
				s[pos] = byte(32 + r.Intn(95))
			case 1:
				s = append(s[:pos], s[pos+1:]...)
			default:
				s = append(s[:pos], append([]byte{byte(32 + r.Intn(95))}, s[pos:]...)...)
			}
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("Parse(%q) panicked: %v", s, p)
				}
			}()
			_, _ = Parse(string(s))
		}()
	}
}
