// Package spec implements the paper's predictor naming convention (§4.2):
//
//	Scheme(History(Size,Associativity,Entry_Content),
//	       Pattern_Table_Set_Size x Pattern(Size,Entry_Content),
//	       Context_Switch)
//
// Examples, as printed in Table 3:
//
//	GAg(HR(1,,18-sr),1xPHT(2^18,A2),c)
//	PAg(BHT(512,4,12-sr),1xPHT(2^12,A2))
//	PAg(IBHT(inf,,12-sr),1xPHT(2^12,A2))
//	PAp(BHT(512,4,6-sr),512xPHT(2^6,A2),c)
//	GSg(HR(1,,12-sr),1xPHT(2^12,PB))
//	PSg(BHT(512,4,12-sr),1xPHT(2^12,PB))
//	BTB(BHT(512,4,A2),)
//	AlwaysTaken / BTFN / Profiling
//
// A Spec round-trips: Parse(s).String() == canonical(s), and Build turns a
// Spec into a running predictor.
package spec

import (
	"fmt"
	"strconv"
	"strings"

	"twolevel/internal/automaton"
	"twolevel/internal/history"
	"twolevel/internal/predictor"
)

// Scheme is the outer scheme name of a specification.
type Scheme string

// The schemes simulated in the paper.
const (
	SchemeGAg Scheme = "GAg"
	SchemePAg Scheme = "PAg"
	SchemePAp Scheme = "PAp"
	// SchemeGAp, SchemeGAs, SchemePAs, SchemeSAg, SchemeSAs and
	// SchemeSAp are the repository's extension variations completing
	// the {G,P,S} x {g,p,s} grid of Yeh & Patt's later taxonomy; see
	// predictor.Variation.
	SchemeGAp         Scheme = "GAp"
	SchemeGAs         Scheme = "GAs"
	SchemePAs         Scheme = "PAs"
	SchemeSAg         Scheme = "SAg"
	SchemeSAs         Scheme = "SAs"
	SchemeSAp         Scheme = "SAp"
	SchemeGSg         Scheme = "GSg"
	SchemePSg         Scheme = "PSg"
	SchemeBTB         Scheme = "BTB"
	SchemeAlwaysTaken Scheme = "AlwaysTaken"
	SchemeBTFN        Scheme = "BTFN"
	SchemeProfiling   Scheme = "Profiling"
)

// Spec is a parsed predictor configuration.
type Spec struct {
	// Scheme is the outer scheme.
	Scheme Scheme

	// History level (first level). For GAg/GSg: HistEntries is 1 and
	// Ideal is false. Ideal selects the IBHT (HistEntries 0).
	HistEntries int
	HistAssoc   int
	Ideal       bool
	// HistoryBits is k for shift-register content ("k-sr"); 0 for BTB
	// designs, whose entry content is an automaton instead.
	HistoryBits int

	// HistSets is the untagged per-set history register count of the
	// S* extension schemes (the SHT history entity).
	HistSets int

	// Pattern level (second level). PHTSets is the Pattern_Table_Set_Size
	// (1 for *g, BHT size for PAp practical, 0 = inf for PAp ideal, the
	// per-set table count for *s schemes). Absent for BTB and static
	// schemes (PHTSets 0, HistoryBits 0).
	PHTSets int

	// Automaton is the entry content: the PHT automaton for two-level
	// and static-training schemes, the per-branch automaton for BTB.
	Automaton automaton.Kind

	// ContextSwitch is the trailing ",c" flag: the simulator should
	// inject context switches.
	ContextSwitch bool
}

// globalHist reports whether the scheme's first level is one register.
func (s Spec) globalHist() bool {
	switch s.Scheme {
	case SchemeGAg, SchemeGSg, SchemeGAp, SchemeGAs:
		return true
	}
	return false
}

// setHist reports whether the scheme's first level is an untagged per-set
// register file.
func (s Spec) setHist() bool {
	switch s.Scheme {
	case SchemeSAg, SchemeSAs, SchemeSAp:
		return true
	}
	return false
}

// HasBHT reports whether the spec uses a per-address branch history table.
func (s Spec) HasBHT() bool {
	switch s.Scheme {
	case SchemePAg, SchemePAp, SchemePSg, SchemeBTB:
		return true
	}
	return false
}

// IsStatic reports whether the scheme keeps no run-time state.
func (s Spec) IsStatic() bool {
	switch s.Scheme {
	case SchemeAlwaysTaken, SchemeBTFN, SchemeProfiling:
		return true
	}
	return false
}

// NeedsTraining reports whether Build requires a training pass (Static
// Training and Profiling schemes).
func (s Spec) NeedsTraining() bool {
	switch s.Scheme {
	case SchemeGSg, SchemePSg, SchemeProfiling:
		return true
	}
	return false
}

// String renders the spec in the paper's naming convention.
func (s Spec) String() string {
	var b strings.Builder
	b.WriteString(string(s.Scheme))
	switch s.Scheme {
	case SchemeAlwaysTaken, SchemeBTFN, SchemeProfiling:
		if s.ContextSwitch {
			return b.String() + "(,,c)"
		}
		return b.String()
	}
	b.WriteByte('(')
	// History part.
	switch {
	case s.globalHist():
		fmt.Fprintf(&b, "HR(1,,%d-sr)", s.HistoryBits)
	case s.setHist():
		fmt.Fprintf(&b, "SHT(%d,,%d-sr)", s.HistSets, s.HistoryBits)
	case s.Ideal:
		fmt.Fprintf(&b, "IBHT(inf,,%d-sr)", s.HistoryBits)
	case s.Scheme == SchemeBTB:
		fmt.Fprintf(&b, "BHT(%d,%d,%s)", s.HistEntries, s.HistAssoc, s.Automaton)
	default:
		fmt.Fprintf(&b, "BHT(%d,%d,%d-sr)", s.HistEntries, s.HistAssoc, s.HistoryBits)
	}
	b.WriteByte(',')
	// Pattern part (absent for BTB).
	if s.Scheme != SchemeBTB {
		atm := s.Automaton.String()
		if s.Scheme == SchemeGSg || s.Scheme == SchemePSg {
			atm = "PB"
		}
		if s.PHTSets == 0 {
			fmt.Fprintf(&b, "infxPHT(2^%d,%s)", s.HistoryBits, atm)
		} else {
			fmt.Fprintf(&b, "%dxPHT(2^%d,%s)", s.PHTSets, s.HistoryBits, atm)
		}
	}
	if s.ContextSwitch {
		b.WriteString(",c")
	}
	b.WriteByte(')')
	return b.String()
}

// Parse parses a specification string. Whitespace is ignored. The
// multiplication sign in the pattern part may be 'x' or 'X'.
func Parse(input string) (Spec, error) {
	s := strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' {
			return -1
		}
		return r
	}, input)
	if s == "" {
		return Spec{}, fmt.Errorf("spec: empty specification")
	}
	open := strings.IndexByte(s, '(')
	name := s
	var args string
	if open >= 0 {
		if !strings.HasSuffix(s, ")") {
			return Spec{}, fmt.Errorf("spec: %q: missing closing parenthesis", input)
		}
		name = s[:open]
		args = s[open+1 : len(s)-1]
	}
	sp := Spec{Scheme: Scheme(name)}
	switch sp.Scheme {
	case SchemeAlwaysTaken, SchemeBTFN, SchemeProfiling:
		for _, f := range splitTop(args) {
			switch f {
			case "", " ":
			case "c":
				sp.ContextSwitch = true
			default:
				return Spec{}, fmt.Errorf("spec: %q: static scheme takes only a context-switch flag", input)
			}
		}
		return sp, nil
	case SchemeGAg, SchemePAg, SchemePAp, SchemeGAp, SchemeGAs, SchemePAs,
		SchemeSAg, SchemeSAs, SchemeSAp, SchemeGSg, SchemePSg, SchemeBTB:
	default:
		return Spec{}, fmt.Errorf("spec: unknown scheme %q", name)
	}
	fields := splitTop(args)
	if len(fields) < 1 {
		return Spec{}, fmt.Errorf("spec: %q: missing history part", input)
	}
	if err := sp.parseHistory(fields[0]); err != nil {
		return Spec{}, fmt.Errorf("spec: %q: %v", input, err)
	}
	rest := fields[1:]
	if sp.Scheme != SchemeBTB {
		if len(rest) < 1 || rest[0] == "" {
			return Spec{}, fmt.Errorf("spec: %q: missing pattern part", input)
		}
		if err := sp.parsePattern(rest[0]); err != nil {
			return Spec{}, fmt.Errorf("spec: %q: %v", input, err)
		}
		rest = rest[1:]
	} else if len(rest) > 0 && rest[0] == "" {
		rest = rest[1:] // BTB prints an empty pattern slot: BTB(...,)
	}
	for _, f := range rest {
		switch f {
		case "":
		case "c":
			sp.ContextSwitch = true
		default:
			return Spec{}, fmt.Errorf("spec: %q: unexpected field %q", input, f)
		}
	}
	return sp, sp.Validate()
}

// MustParse is Parse that panics on error, for tables of known-good specs.
func MustParse(input string) Spec {
	sp, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return sp
}

// splitTop splits on commas not nested inside parentheses.
func splitTop(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) || len(out) > 0 && start == len(s) {
		out = append(out, s[start:])
	} else if s != "" {
		out = append(out, s)
	}
	return out
}

func (sp *Spec) parseHistory(f string) error {
	kind, args, err := call(f)
	if err != nil {
		return err
	}
	parts := strings.Split(args, ",")
	if len(parts) != 3 {
		return fmt.Errorf("history %q wants 3 fields", f)
	}
	size, assoc, content := parts[0], parts[1], parts[2]
	switch kind {
	case "HR":
		if !sp.globalHist() {
			return fmt.Errorf("HR history is only valid for global-history schemes")
		}
		if size != "1" {
			return fmt.Errorf("HR size must be 1, got %q", size)
		}
		sp.HistEntries = 1
	case "SHT":
		if !sp.setHist() {
			return fmt.Errorf("SHT history is only valid for per-set schemes (SAg/SAs/SAp)")
		}
		n, err := strconv.Atoi(size)
		if err != nil || n <= 0 || n&(n-1) != 0 {
			return fmt.Errorf("SHT size %q must be a power of two", size)
		}
		sp.HistSets = n
	case "IBHT":
		if sp.globalHist() || sp.setHist() {
			return fmt.Errorf("IBHT history is only valid for per-address schemes")
		}
		if size != "inf" {
			return fmt.Errorf("IBHT size must be inf, got %q", size)
		}
		sp.Ideal = true
	case "BHT":
		if sp.globalHist() || sp.setHist() {
			return fmt.Errorf("BHT history is only valid for per-address schemes")
		}
		n, err := strconv.Atoi(size)
		if err != nil || n <= 0 {
			return fmt.Errorf("BHT size %q", size)
		}
		a, err := strconv.Atoi(assoc)
		if err != nil || a <= 0 {
			return fmt.Errorf("BHT associativity %q", assoc)
		}
		sp.HistEntries, sp.HistAssoc = n, a
	default:
		return fmt.Errorf("unknown history entity %q", kind)
	}
	// Entry content: "k-sr" shift register, or an automaton for BTB.
	if sp.Scheme == SchemeBTB {
		k, err := automaton.ParseKind(content)
		if err != nil {
			return fmt.Errorf("BTB entry content: %v", err)
		}
		sp.Automaton = k
		return nil
	}
	k, ok := strings.CutSuffix(content, "-sr")
	if !ok {
		return fmt.Errorf("history entry content %q is not a shift register (k-sr)", content)
	}
	bits, err := strconv.Atoi(k)
	if err != nil || bits < 1 || bits > history.MaxBits {
		return fmt.Errorf("history register length %q", k)
	}
	sp.HistoryBits = bits
	return nil
}

func (sp *Spec) parsePattern(f string) error {
	// Form: <sets>xPHT(2^k,Atm) where sets is an integer or "inf".
	ix := strings.IndexAny(f, "xX")
	if ix < 0 {
		return fmt.Errorf("pattern %q missing set size", f)
	}
	setsStr := f[:ix]
	if setsStr == "inf" {
		sp.PHTSets = 0
	} else {
		n, err := strconv.Atoi(setsStr)
		if err != nil || n <= 0 {
			return fmt.Errorf("pattern set size %q", setsStr)
		}
		sp.PHTSets = n
	}
	kind, args, err := call(f[ix+1:])
	if err != nil {
		return err
	}
	if kind != "PHT" {
		return fmt.Errorf("pattern entity %q, want PHT", kind)
	}
	parts := strings.Split(args, ",")
	if len(parts) != 2 {
		return fmt.Errorf("pattern %q wants 2 fields", f)
	}
	expBits, ok := strings.CutPrefix(parts[0], "2^")
	if !ok {
		return fmt.Errorf("pattern size %q must be 2^k", parts[0])
	}
	bits, err := strconv.Atoi(expBits)
	if err != nil || bits != sp.HistoryBits {
		return fmt.Errorf("pattern size 2^%s does not match %d-bit history", expBits, sp.HistoryBits)
	}
	atm, err := automaton.ParseKind(parts[1])
	if err != nil {
		return err
	}
	sp.Automaton = atm
	return nil
}

// call splits "Name(args)" into its parts.
func call(s string) (name, args string, err error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", "", fmt.Errorf("malformed call %q", s)
	}
	return s[:open], s[open+1 : len(s)-1], nil
}

// Validate checks cross-field consistency.
func (sp Spec) Validate() error {
	switch sp.Scheme {
	case SchemeGAg, SchemeGSg:
		if sp.HistoryBits < 1 {
			return fmt.Errorf("spec: %s requires a history register length", sp.Scheme)
		}
		if sp.PHTSets != 1 {
			return fmt.Errorf("spec: %s requires exactly one pattern table", sp.Scheme)
		}
	case SchemePAg, SchemePSg:
		if sp.HistoryBits < 1 {
			return fmt.Errorf("spec: %s requires a history register length", sp.Scheme)
		}
		if sp.PHTSets != 1 {
			return fmt.Errorf("spec: %s requires exactly one pattern table", sp.Scheme)
		}
	case SchemePAp:
		if sp.HistoryBits < 1 {
			return fmt.Errorf("spec: %s requires a history register length", sp.Scheme)
		}
		if sp.Ideal {
			if sp.PHTSets != 0 {
				return fmt.Errorf("spec: ideal PAp requires inf pattern tables")
			}
		} else if sp.PHTSets != sp.HistEntries {
			return fmt.Errorf("spec: PAp pattern set size %d must equal BHT size %d (p = h)",
				sp.PHTSets, sp.HistEntries)
		}
	case SchemeGAp:
		if sp.HistoryBits < 1 {
			return fmt.Errorf("spec: %s requires a history register length", sp.Scheme)
		}
		if sp.PHTSets != 0 && (sp.PHTSets&(sp.PHTSets-1) != 0) {
			return fmt.Errorf("spec: GAp pattern set size %d must be a power of two (or inf)", sp.PHTSets)
		}
	case SchemeSAp:
		if sp.HistoryBits < 1 {
			return fmt.Errorf("spec: %s requires a history register length", sp.Scheme)
		}
		if sp.PHTSets != 0 && (sp.PHTSets&(sp.PHTSets-1) != 0) {
			return fmt.Errorf("spec: SAp pattern set size %d must be a power of two (or inf)", sp.PHTSets)
		}
	case SchemeGAs, SchemePAs, SchemeSAs:
		if sp.HistoryBits < 1 {
			return fmt.Errorf("spec: %s requires a history register length", sp.Scheme)
		}
		if sp.PHTSets <= 0 || sp.PHTSets&(sp.PHTSets-1) != 0 {
			return fmt.Errorf("spec: %s pattern set size %d must be a power of two", sp.Scheme, sp.PHTSets)
		}
	}
	if sp.setHist() && (sp.HistSets <= 0 || sp.HistSets&(sp.HistSets-1) != 0) {
		return fmt.Errorf("spec: %s requires a power-of-two SHT size", sp.Scheme)
	}
	if (sp.Scheme == SchemeGSg || sp.Scheme == SchemePSg) && sp.Automaton != automaton.PB {
		return fmt.Errorf("spec: static training requires PB pattern entries")
	}
	if sp.HasBHT() && !sp.Ideal {
		if sp.HistEntries&(sp.HistEntries-1) != 0 {
			return fmt.Errorf("spec: BHT size %d must be a power of two", sp.HistEntries)
		}
		if sp.HistAssoc&(sp.HistAssoc-1) != 0 || sp.HistAssoc > sp.HistEntries {
			return fmt.Errorf("spec: BHT associativity %d invalid", sp.HistAssoc)
		}
	}
	return nil
}

// TrainingData carries the training-pass products needed to build the
// schemes that are preset before execution (GSg, PSg, Profiling).
type TrainingData struct {
	// Static is the pattern trainer for GSg (global) or PSg
	// (per-address). Its history configuration must match the spec.
	Static *predictor.StaticTrainer
	// Profile is the per-branch profile trainer for Profiling.
	Profile *predictor.ProfileTrainer
}

// Build constructs the predictor described by sp. Schemes for which
// NeedsTraining is true require the corresponding trainer in td.
func Build(sp Spec, td *TrainingData) (predictor.Predictor, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	name := sp.String()
	switch sp.Scheme {
	case SchemeAlwaysTaken:
		return predictor.AlwaysTaken{}, nil
	case SchemeBTFN:
		return predictor.BTFN{}, nil
	case SchemeProfiling:
		if td == nil || td.Profile == nil {
			return nil, fmt.Errorf("spec: %s requires a profile training pass", sp.Scheme)
		}
		return td.Profile.Build(), nil
	case SchemeGSg:
		if td == nil || td.Static == nil {
			return nil, fmt.Errorf("spec: %s requires a static training pass", sp.Scheme)
		}
		return predictor.NewTwoLevel(predictor.TwoLevelConfig{
			Variation:   predictor.GAg,
			HistoryBits: sp.HistoryBits,
			Preset:      td.Static.Preset(),
			DisplayName: name,
		})
	case SchemePSg:
		if td == nil || td.Static == nil {
			return nil, fmt.Errorf("spec: %s requires a static training pass", sp.Scheme)
		}
		return predictor.NewTwoLevel(predictor.TwoLevelConfig{
			Variation:   predictor.PAg,
			HistoryBits: sp.HistoryBits,
			Entries:     sp.HistEntries,
			Assoc:       sp.HistAssoc,
			Ideal:       sp.Ideal,
			Preset:      td.Static.Preset(),
			DisplayName: name,
		})
	case SchemeBTB:
		return predictor.NewBTB(predictor.BTBConfig{
			Entries:     sp.HistEntries,
			Assoc:       sp.HistAssoc,
			Automaton:   sp.Automaton,
			DisplayName: name,
		})
	case SchemeGAs, SchemePAs, SchemeSAg, SchemeSAs, SchemeSAp:
		var v predictor.Variation
		switch sp.Scheme {
		case SchemeGAs:
			v = predictor.GAs
		case SchemePAs:
			v = predictor.PAs
		case SchemeSAg:
			v = predictor.SAg
		case SchemeSAs:
			v = predictor.SAs
		default:
			v = predictor.SAp
		}
		cfg := predictor.TwoLevelConfig{
			Variation:   v,
			HistoryBits: sp.HistoryBits,
			Automaton:   sp.Automaton,
			HistorySets: sp.HistSets,
			PatternSets: sp.PHTSets,
			Entries:     sp.HistEntries,
			Assoc:       sp.HistAssoc,
			Ideal:       sp.Ideal,
			DisplayName: name,
		}
		if sp.Scheme == SchemeSAp {
			// Per-address pattern binding uses a 4-way cache sized by
			// the pattern set count, as in GAp.
			cfg.Entries = sp.PHTSets
			cfg.Assoc = 4
			cfg.Ideal = sp.PHTSets == 0
			if cfg.Entries > 0 && cfg.Entries < 4 {
				cfg.Assoc = cfg.Entries
			}
		}
		return predictor.NewTwoLevel(cfg)
	case SchemeGAp:
		// The pattern-table binding cache is 4-way set-associative, a
		// fixed implementation choice (the naming convention has no
		// field for it).
		cfg := predictor.TwoLevelConfig{
			Variation:   predictor.GAp,
			HistoryBits: sp.HistoryBits,
			Automaton:   sp.Automaton,
			Entries:     sp.PHTSets,
			Assoc:       4,
			Ideal:       sp.PHTSets == 0,
			DisplayName: name,
		}
		if cfg.Entries > 0 && cfg.Entries < 4 {
			cfg.Assoc = cfg.Entries
		}
		return predictor.NewTwoLevel(cfg)
	default:
		var v predictor.Variation
		switch sp.Scheme {
		case SchemeGAg:
			v = predictor.GAg
		case SchemePAg:
			v = predictor.PAg
		case SchemePAp:
			v = predictor.PAp
		}
		return predictor.NewTwoLevel(predictor.TwoLevelConfig{
			Variation:   v,
			HistoryBits: sp.HistoryBits,
			Automaton:   sp.Automaton,
			Entries:     sp.HistEntries,
			Assoc:       sp.HistAssoc,
			Ideal:       sp.Ideal,
			DisplayName: name,
		})
	}
}

// NewTrainer returns the pattern trainer matching sp's structure, for
// running the training pass of a GSg/PSg scheme.
func NewTrainer(sp Spec) (*predictor.StaticTrainer, error) {
	switch sp.Scheme {
	case SchemeGSg:
		return predictor.NewStaticTrainer(sp.HistoryBits, false), nil
	case SchemePSg:
		return predictor.NewStaticTrainer(sp.HistoryBits, true), nil
	default:
		return nil, fmt.Errorf("spec: %s does not use a static trainer", sp.Scheme)
	}
}
