package spec

import (
	"strings"
	"testing"

	"twolevel/internal/automaton"
	"twolevel/internal/predictor"
	"twolevel/internal/trace"
)

// Table 3 of the paper, as spec strings (r = 12 where the paper sweeps).
var table3 = []string{
	"GAg(HR(1,,12-sr),1xPHT(2^12,A2))",
	"PAg(BHT(256,1,12-sr),1xPHT(2^12,A2))",
	"PAg(BHT(256,4,12-sr),1xPHT(2^12,A2))",
	"PAg(BHT(512,1,12-sr),1xPHT(2^12,A2))",
	"PAg(BHT(512,4,12-sr),1xPHT(2^12,A1))",
	"PAg(BHT(512,4,12-sr),1xPHT(2^12,A2))",
	"PAg(BHT(512,4,12-sr),1xPHT(2^12,A3))",
	"PAg(BHT(512,4,12-sr),1xPHT(2^12,A4))",
	"PAg(BHT(512,4,12-sr),1xPHT(2^12,LT))",
	"PAg(IBHT(inf,,12-sr),1xPHT(2^12,A2))",
	"PAp(BHT(512,4,12-sr),512xPHT(2^12,A2))",
	"GSg(HR(1,,12-sr),1xPHT(2^12,PB))",
	"PSg(BHT(512,4,12-sr),1xPHT(2^12,PB))",
	"BTB(BHT(512,4,A2),)",
	"BTB(BHT(512,4,LT),)",
}

func TestParseTable3RoundTrip(t *testing.T) {
	for _, s := range table3 {
		sp, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(%q): %v", s, err)
			continue
		}
		if got := sp.String(); got != s {
			t.Errorf("round trip: %q -> %q", s, got)
		}
	}
}

func TestParseContextSwitchFlag(t *testing.T) {
	sp, err := Parse("PAg(BHT(512,4,12-sr),1xPHT(2^12,A2),c)")
	if err != nil {
		t.Fatal(err)
	}
	if !sp.ContextSwitch {
		t.Fatal("context switch flag lost")
	}
	if !strings.HasSuffix(sp.String(), ",c)") {
		t.Fatalf("String() dropped the flag: %q", sp.String())
	}
	sp2, err := Parse("BTB(BHT(512,4,A2),,c)")
	if err != nil {
		t.Fatal(err)
	}
	if !sp2.ContextSwitch {
		t.Fatal("BTB context switch flag lost")
	}
}

func TestParseFieldExtraction(t *testing.T) {
	sp := MustParse("PAp(BHT(512,4,6-sr),512xPHT(2^6,A3))")
	if sp.Scheme != SchemePAp || sp.HistEntries != 512 || sp.HistAssoc != 4 ||
		sp.HistoryBits != 6 || sp.PHTSets != 512 || sp.Automaton != automaton.A3 {
		t.Fatalf("fields wrong: %+v", sp)
	}
	g := MustParse("GAg(HR(1,,18-sr),1xPHT(2^18,A2))")
	if g.HistEntries != 1 || g.HistoryBits != 18 || g.PHTSets != 1 {
		t.Fatalf("GAg fields wrong: %+v", g)
	}
	i := MustParse("PAp(IBHT(inf,,8-sr),infxPHT(2^8,A2))")
	if !i.Ideal || i.PHTSets != 0 {
		t.Fatalf("ideal PAp fields wrong: %+v", i)
	}
}

func TestParseIgnoresWhitespaceAndCaseX(t *testing.T) {
	a := MustParse("PAg(BHT(512, 4, 12-sr), 1 X PHT(2^12, A2))")
	b := MustParse("PAg(BHT(512,4,12-sr),1xPHT(2^12,A2))")
	if a != b {
		t.Fatalf("whitespace/X variant parsed differently: %+v vs %+v", a, b)
	}
}

func TestParseStaticSchemes(t *testing.T) {
	for _, s := range []string{"AlwaysTaken", "BTFN", "Profiling"} {
		sp, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if sp.String() != s {
			t.Fatalf("static round trip %q -> %q", s, sp.String())
		}
		if !sp.IsStatic() {
			t.Fatalf("%s should be static", s)
		}
	}
	sp := MustParse("BTFN(,,c)")
	if !sp.ContextSwitch {
		t.Fatal("static context switch flag lost")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"Nonsense(HR(1,,12-sr),1xPHT(2^12,A2))",
		"GAg(HR(1,,12-sr),1xPHT(2^12,A2)", // missing close
		"GAg(HR(2,,12-sr),1xPHT(2^12,A2))",
		"GAg(BHT(512,4,12-sr),1xPHT(2^12,A2))", // global can't have BHT
		"PAg(HR(1,,12-sr),1xPHT(2^12,A2))",     // per-address can't have HR
		"PAg(BHT(512,4,12-sr),1xPHT(2^10,A2))", // mismatched sizes
		"PAg(BHT(512,4,12-sr),1xPHT(2^12,ZZ))",
		"PAg(BHT(512,4,12),1xPHT(2^12,A2))", // not a shift register
		"PAg(BHT(500,4,12-sr),1xPHT(2^12,A2))",
		"PAg(BHT(512,3,12-sr),1xPHT(2^12,A2))",
		"PAp(BHT(512,4,6-sr),256xPHT(2^6,A2))", // p != h
		"PAg(BHT(512,4,12-sr))",                // missing pattern
		"PAg(BHT(512,4,12-sr),2xPHT(2^12,A2))",
		"GSg(HR(1,,12-sr),1xPHT(2^12,A2))", // static training needs PB
		"PAg(BHT(512,4,0-sr),1xPHT(2^0,A2))",
		"PAg(BHT(512,4,12-sr),1xPHT(2^12,A2),z)",
		"AlwaysTaken(BHT(512,4,A2),)",
		"BTB(BHT(512,4,12-sr),)", // BTB holds an automaton, not a shift register
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestBuildTwoLevelSchemes(t *testing.T) {
	for _, s := range []string{
		"GAg(HR(1,,8-sr),1xPHT(2^8,A2))",
		"PAg(BHT(512,4,8-sr),1xPHT(2^8,A2))",
		"PAp(BHT(256,4,6-sr),256xPHT(2^6,A2))",
		"PAg(IBHT(inf,,8-sr),1xPHT(2^8,LT))",
		"PAp(IBHT(inf,,6-sr),infxPHT(2^6,A2))",
		"BTB(BHT(512,4,A2),)",
		"BTB(BHT(512,4,LT),)",
		"AlwaysTaken",
		"BTFN",
	} {
		sp := MustParse(s)
		p, err := Build(sp, nil)
		if err != nil {
			t.Errorf("Build(%q): %v", s, err)
			continue
		}
		if !sp.IsStatic() && p.Name() != s {
			t.Errorf("built predictor name %q, want %q", p.Name(), s)
		}
		// Smoke: the predictor runs.
		b := trace.Branch{PC: 0x1000, Target: 0x800, Class: trace.Cond, Taken: true}
		pred := p.Predict(b)
		p.Update(b, pred)
		p.ContextSwitch()
	}
}

func TestBuildTrainingSchemesRequireTrainers(t *testing.T) {
	for _, s := range []string{
		"GSg(HR(1,,6-sr),1xPHT(2^6,PB))",
		"PSg(BHT(512,4,6-sr),1xPHT(2^6,PB))",
		"Profiling",
	} {
		sp := MustParse(s)
		if !sp.NeedsTraining() {
			t.Errorf("%s should need training", s)
		}
		if _, err := Build(sp, nil); err == nil {
			t.Errorf("Build(%q) without training data accepted", s)
		}
	}
}

func TestBuildTrainedSchemes(t *testing.T) {
	branches := make([]trace.Branch, 200)
	for i := range branches {
		branches[i] = trace.Branch{PC: 0x100, Target: 0x80, Class: trace.Cond, Taken: i%2 == 0}
	}

	gsgSpec := MustParse("GSg(HR(1,,6-sr),1xPHT(2^6,PB))")
	st, err := NewTrainer(gsgSpec)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range branches {
		st.Observe(b)
	}
	p, err := Build(gsgSpec, &TrainingData{Static: st})
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != gsgSpec.String() {
		t.Fatalf("GSg name %q", p.Name())
	}

	psgSpec := MustParse("PSg(BHT(512,4,6-sr),1xPHT(2^6,PB))")
	st2, err := NewTrainer(psgSpec)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range branches {
		st2.Observe(b)
	}
	if _, err := Build(psgSpec, &TrainingData{Static: st2}); err != nil {
		t.Fatal(err)
	}

	pt := predictor.NewProfileTrainer()
	for _, b := range branches {
		pt.Observe(b)
	}
	prof, err := Build(MustParse("Profiling"), &TrainingData{Profile: pt})
	if err != nil {
		t.Fatal(err)
	}
	if !prof.Predict(trace.Branch{PC: 0x100}) {
		t.Fatal("profile tie should predict taken")
	}
}

func TestNewTrainerRejectsNonTrainingSchemes(t *testing.T) {
	if _, err := NewTrainer(MustParse("GAg(HR(1,,6-sr),1xPHT(2^6,A2))")); err == nil {
		t.Fatal("NewTrainer accepted GAg")
	}
}

func TestHasBHT(t *testing.T) {
	cases := map[string]bool{
		"GAg(HR(1,,6-sr),1xPHT(2^6,A2))":       false,
		"PAg(BHT(512,4,6-sr),1xPHT(2^6,A2))":   true,
		"PAp(BHT(512,4,6-sr),512xPHT(2^6,A2))": true,
		"BTB(BHT(512,4,A2),)":                  true,
		"AlwaysTaken":                          false,
	}
	for s, want := range cases {
		if MustParse(s).HasBHT() != want {
			t.Errorf("%s: HasBHT = %v, want %v", s, !want, want)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("garbage(")
}

func TestTaxonomySpecRoundTripAndBuild(t *testing.T) {
	specs := []string{
		"GAp(HR(1,,8-sr),512xPHT(2^8,A2))",
		"GAs(HR(1,,8-sr),16xPHT(2^8,A2))",
		"PAs(BHT(512,4,8-sr),16xPHT(2^8,A2))",
		"SAg(SHT(64,,8-sr),1xPHT(2^8,A2))",
		"SAs(SHT(64,,8-sr),16xPHT(2^8,A2))",
		"SAp(SHT(64,,8-sr),512xPHT(2^8,A2))",
	}
	for _, s := range specs {
		sp, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(%q): %v", s, err)
			continue
		}
		if got := sp.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
		p, err := Build(sp, nil)
		if err != nil {
			t.Errorf("Build(%q): %v", s, err)
			continue
		}
		if p.Name() != s {
			t.Errorf("built name %q, want %q", p.Name(), s)
		}
		b := trace.Branch{PC: 0x1000, Target: 0x800, Class: trace.Cond, Taken: true}
		p.Update(b, p.Predict(b))
		p.ContextSwitch()
	}
}

func TestTaxonomySpecErrors(t *testing.T) {
	bad := []string{
		"SAg(BHT(512,4,8-sr),1xPHT(2^8,A2))",   // S scheme needs SHT
		"SAg(SHT(60,,8-sr),1xPHT(2^8,A2))",     // not a power of two
		"GAs(HR(1,,8-sr),infxPHT(2^8,A2))",     // per-set needs a finite count
		"GAs(HR(1,,8-sr),3xPHT(2^8,A2))",       // not a power of two
		"PAg(SHT(64,,8-sr),1xPHT(2^8,A2))",     // SHT only for S schemes
		"SAs(SHT(64,,8-sr),1xPHT(2^9,A2))",     // size mismatch
		"GAp(IBHT(inf,,8-sr),512xPHT(2^8,A2))", // IBHT invalid for global history
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}
