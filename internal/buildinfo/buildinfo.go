// Package buildinfo stamps the repository's binaries and machine-readable
// documents with build provenance: the module version and the VCS revision
// baked into the binary by the Go toolchain. All five cmd/* binaries print
// it under -version, and metrics.json / forensics.json carry it in their
// headers so a document can always be traced back to the build that wrote
// it.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info is the build provenance of the running binary.
type Info struct {
	// Module is the main module path ("twolevel").
	Module string `json:"module"`
	// Version is the module version ("(devel)" for source builds).
	Version string `json:"version"`
	// Revision is the VCS revision the binary was built from, empty when
	// the build carried no VCS metadata (e.g. go test binaries).
	Revision string `json:"revision,omitempty"`
	// Dirty marks a build from a modified working tree.
	Dirty bool `json:"dirty,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

// read is the ReadBuildInfo seam; tests replace it to exercise the
// no-metadata path.
var read = debug.ReadBuildInfo

// Read returns the binary's build provenance. It never fails: a binary
// without embedded build info yields an Info with only GoVersion set.
func Read() Info {
	info := Info{GoVersion: runtime.Version()}
	bi, ok := read()
	if !ok {
		return info
	}
	info.Module = bi.Main.Path
	info.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// String renders the provenance as the one-line -version output, e.g.
// "twolevel (devel) rev 13c7fc2… (go1.22.0)".
func (i Info) String() string {
	s := i.Module
	if s == "" {
		s = "twolevel"
	}
	if i.Version != "" {
		s += " " + i.Version
	}
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if i.Dirty {
			s += " (dirty)"
		}
	}
	return fmt.Sprintf("%s (%s)", s, i.GoVersion)
}
