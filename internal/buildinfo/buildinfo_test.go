package buildinfo

import (
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
)

func TestReadAlwaysYieldsGoVersion(t *testing.T) {
	info := Read()
	if info.GoVersion != runtime.Version() {
		t.Fatalf("GoVersion = %q, want %q", info.GoVersion, runtime.Version())
	}
	if !strings.Contains(info.String(), info.GoVersion) {
		t.Errorf("String() = %q missing go version", info.String())
	}
}

func TestReadWithoutBuildInfo(t *testing.T) {
	old := read
	defer func() { read = old }()
	read = func() (*debug.BuildInfo, bool) { return nil, false }

	info := Read()
	if info.Module != "" || info.Revision != "" {
		t.Fatalf("no-metadata build yielded %+v", info)
	}
	if got := info.String(); !strings.HasPrefix(got, "twolevel (") {
		t.Errorf("String() = %q, want fallback module name", got)
	}
}

func TestStringTruncatesRevisionAndMarksDirty(t *testing.T) {
	old := read
	defer func() { read = old }()
	read = func() (*debug.BuildInfo, bool) {
		return &debug.BuildInfo{
			Main: debug.Module{Path: "twolevel", Version: "v1.2.3"},
			Settings: []debug.BuildSetting{
				{Key: "vcs.revision", Value: "0123456789abcdef0123"},
				{Key: "vcs.modified", Value: "true"},
			},
		}, true
	}

	info := Read()
	if !info.Dirty {
		t.Fatal("vcs.modified=true not reflected")
	}
	s := info.String()
	for _, want := range []string{"twolevel v1.2.3", "rev 0123456789ab", "(dirty)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if strings.Contains(s, "0123456789abc") {
		t.Errorf("String() = %q: revision not truncated to 12 chars", s)
	}
}
