// Package bht implements the per-address branch history table (first
// level) used by the PAg and PAp schemes and by the Branch Target Buffer
// designs, per §3.3 of the paper.
//
// Two implementations are provided:
//
//   - Cache: the practical table — direct-mapped or set-associative with
//     true LRU replacement, indexed by the low bits of the branch address
//     with the high bits stored as a tag.
//   - Ideal: the Ideal Branch History Table (IBHT) — one entry per static
//     conditional branch, no capacity or conflict misses.
//
// An Entry carries every per-branch field any scheme needs: the k-bit
// history register (PAg/PAp), a cached prediction bit (§3.1), a per-branch
// automaton state (BTB designs), the cached target address (§3.2) and, for
// PAp, the per-address pattern history table bound to the entry's slot.
package bht

import (
	"fmt"
	"math/bits"

	"twolevel/internal/automaton"
	"twolevel/internal/history"
	"twolevel/internal/pht"
)

// Entry is one branch history table entry. The bookkeeping fields (tag,
// validity, LRU stamp) are managed by the Store; the payload fields are
// owned by the predictor using the table.
type Entry struct {
	valid bool
	ever  bool   // slot has been allocated at least once (occupancy telemetry)
	pc    uint32 // full address of the owning branch
	stamp uint64 // LRU timestamp

	// Hist is the branch's k-bit history register.
	Hist history.Register
	// Pred caches the prediction fetched from the pattern history table
	// when the branch last resolved, so the next prediction is available
	// in one cycle (§3.1).
	Pred bool
	// State is the per-branch automaton state used by BTB designs,
	// which keep the counter in the entry itself instead of a second
	// level.
	State automaton.State
	// Target caches the branch target address (§3.2).
	Target uint32
	// PHT is the per-address pattern history table bound to this entry
	// slot in PAp schemes; nil for other schemes. The predictor decides
	// whether a newly allocated branch gets a reinitialised table
	// (default, per-address semantics) or inherits the previous
	// occupant's contents (the InheritPHTOnReplace ablation).
	PHT *pht.Table
}

// PC returns the full address of the branch owning this entry.
func (e *Entry) PC() uint32 { return e.pc }

// Valid reports whether the entry currently holds a resident branch.
func (e *Entry) Valid() bool { return e.valid }

// Ever reports whether the slot has been allocated at least once.
func (e *Entry) Ever() bool { return e.ever }

// Stamp returns the entry's LRU timestamp.
func (e *Entry) Stamp() uint64 { return e.stamp }

// SetValid forces the residency flag. Flat replay kernels
// (internal/sim/fastpath) mirror table bookkeeping into packed arrays and
// write the final state back through this and the store import seams.
func (e *Entry) SetValid(v bool) { e.valid = v }

// Store is a branch history table: either a practical Cache or the Ideal
// table.
type Store interface {
	// Lookup returns the entry for pc, or nil on a miss. A hit refreshes
	// the entry's LRU position.
	Lookup(pc uint32) *Entry
	// Allocate victimises an entry for pc and returns it. recycled
	// reports whether the entry previously belonged to a different
	// branch (its payload holds a stranger's history). The caller must
	// reinitialise the payload fields it uses.
	Allocate(pc uint32) (e *Entry, recycled bool)
	// Flush invalidates every entry (context switch, §5.1.4). Pattern
	// history tables bound to entries are deliberately not reset.
	Flush()
	// Entries returns the table capacity (0 means unbounded).
	Entries() int
	// Touched returns the number of distinct entry slots ever allocated
	// since construction — table occupancy telemetry. Flush does not
	// reset the count.
	Touched() int
	// Range calls f for every slot ever allocated, including entries
	// invalidated by Flush (their payload — notably a PAp pattern table —
	// survives the flush). Iteration order is unspecified.
	Range(f func(e *Entry))
}

// Cache is the practical set-associative branch history table.
type Cache struct {
	entries  []Entry
	sets     int
	assoc    int
	idxBits  int
	clock    uint64
	capacity int
	touched  int // slots ever allocated
}

// NewCache returns a table with the given number of entries and
// associativity. entries must be a power of two and divisible by assoc;
// assoc must be a power of two >= 1 (assoc == 1 is direct-mapped).
func NewCache(entries, assoc int) *Cache {
	if entries <= 0 || entries&(entries-1) != 0 {
		//lint:allow nopanic programmer-error guard below the validated-constructor layer (predictor.NewBTB validates first); contract-tested
		panic(fmt.Sprintf("bht: entries %d must be a positive power of two", entries))
	}
	if assoc <= 0 || assoc&(assoc-1) != 0 || assoc > entries {
		//lint:allow nopanic programmer-error guard below the validated-constructor layer (predictor.NewBTB validates first); contract-tested
		panic(fmt.Sprintf("bht: associativity %d invalid for %d entries", assoc, entries))
	}
	sets := entries / assoc
	return &Cache{
		entries:  make([]Entry, entries),
		sets:     sets,
		assoc:    assoc,
		idxBits:  bits.TrailingZeros(uint(sets)),
		capacity: entries,
	}
}

// index returns the set index for pc. Instructions are word-aligned, so
// the low two bits are dropped first.
func (c *Cache) index(pc uint32) int {
	return int(pc >> 2 & uint32(c.sets-1))
}

// Entries implements Store.
func (c *Cache) Entries() int { return c.capacity }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

// Lookup implements Store.
func (c *Cache) Lookup(pc uint32) *Entry {
	base := c.index(pc) * c.assoc
	for i := 0; i < c.assoc; i++ {
		e := &c.entries[base+i]
		if e.valid && e.pc == pc {
			c.clock++
			e.stamp = c.clock
			return e
		}
	}
	return nil
}

// Allocate implements Store. Within a set, the least recently used entry
// is victimised (§3.3).
func (c *Cache) Allocate(pc uint32) (*Entry, bool) {
	base := c.index(pc) * c.assoc
	victim := &c.entries[base]
	for i := 0; i < c.assoc; i++ {
		e := &c.entries[base+i]
		if !e.valid {
			victim = e
			break
		}
		if e.stamp < victim.stamp {
			victim = e
		}
	}
	recycled := victim.valid && victim.pc != pc
	c.clock++
	if !victim.ever {
		victim.ever = true
		c.touched++
	}
	victim.valid = true
	victim.pc = pc
	victim.stamp = c.clock
	return victim, recycled
}

// Touched implements Store.
func (c *Cache) Touched() int { return c.touched }

// At returns slot i in physical order (set-major, way-minor), or nil when
// i is out of range. Flat replay kernels use it with SetSlot to mirror
// the table into packed arrays and restore it afterwards.
func (c *Cache) At(i int) *Entry {
	if i < 0 || i >= len(c.entries) {
		return nil
	}
	return &c.entries[i]
}

// Clock returns the LRU clock. Stamps are meaningful only relative to
// each other within a set; the clock is the exclusive upper bound.
func (c *Cache) Clock() uint64 { return c.clock }

// SetClock forces the LRU clock. Kernel state-import seam; the caller is
// responsible for keeping it at least as large as every live stamp.
func (c *Cache) SetClock(v uint64) { c.clock = v }

// SetSlot overwrites slot i's bookkeeping fields (payload fields are
// untouched), keeping the touched-slot count consistent when ever rises.
// Out-of-range indices are ignored. Kernel state-import seam.
func (c *Cache) SetSlot(i int, valid, ever bool, pc uint32, stamp uint64) {
	if i < 0 || i >= len(c.entries) {
		return
	}
	e := &c.entries[i]
	if ever && !e.ever {
		c.touched++
	}
	e.valid = valid
	e.ever = e.ever || ever
	e.pc = pc
	e.stamp = stamp
}

// Range implements Store.
func (c *Cache) Range(f func(e *Entry)) {
	for i := range c.entries {
		if c.entries[i].ever {
			f(&c.entries[i])
		}
	}
}

// Flush implements Store.
func (c *Cache) Flush() {
	for i := range c.entries {
		c.entries[i].valid = false
	}
}

// Ideal is the Ideal Branch History Table: one entry per static branch,
// no misses after first reference, no replacement.
type Ideal struct {
	entries map[uint32]*Entry
}

// NewIdeal returns an empty ideal table.
func NewIdeal() *Ideal {
	return &Ideal{entries: make(map[uint32]*Entry)}
}

// Entries implements Store; the ideal table is unbounded.
func (t *Ideal) Entries() int { return 0 }

// Known returns the number of static branches currently tracked.
func (t *Ideal) Known() int { return len(t.entries) }

// Lookup implements Store.
func (t *Ideal) Lookup(pc uint32) *Entry {
	e := t.entries[pc]
	if e == nil || !e.valid {
		return nil
	}
	return e
}

// Allocate implements Store. A flushed entry for the same branch is
// revived with its slot state (notably its PAp pattern table) intact, so
// a context-switch flush does not reset pattern history.
func (t *Ideal) Allocate(pc uint32) (*Entry, bool) {
	if e, ok := t.entries[pc]; ok {
		e.valid = true
		return e, false
	}
	e := &Entry{valid: true, ever: true, pc: pc}
	t.entries[pc] = e
	return e, false
}

// Flush implements Store.
func (t *Ideal) Flush() {
	for _, e := range t.entries {
		e.valid = false
	}
}

// Touched implements Store: every static branch seen has its own entry.
func (t *Ideal) Touched() int { return len(t.entries) }

// Slot returns pc's entry regardless of validity, creating an invalid
// one when the branch has never been tracked. Unlike Allocate it does not
// revive a flushed entry. Kernel state-import seam: the caller restores
// payload fields and sets validity explicitly via Entry.SetValid.
func (t *Ideal) Slot(pc uint32) *Entry {
	if e, ok := t.entries[pc]; ok {
		return e
	}
	e := &Entry{ever: true, pc: pc}
	t.entries[pc] = e
	return e
}

// Range implements Store.
func (t *Ideal) Range(f func(e *Entry)) {
	for _, e := range t.entries {
		f(e)
	}
}
