package bht

import (
	"testing"
	"testing/quick"

	"twolevel/internal/history"
	"twolevel/internal/rng"
)

func TestNewCacheValidation(t *testing.T) {
	bad := [][2]int{{0, 1}, {-4, 1}, {100, 4}, {512, 3}, {512, 0}, {4, 8}}
	for _, c := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCache(%d,%d) did not panic", c[0], c[1])
				}
			}()
			NewCache(c[0], c[1])
		}()
	}
	// The paper's four configurations must construct.
	for _, c := range [][2]int{{512, 4}, {512, 1}, {256, 4}, {256, 1}} {
		cache := NewCache(c[0], c[1])
		if cache.Entries() != c[0] || cache.Assoc() != c[1] || cache.Sets() != c[0]/c[1] {
			t.Errorf("NewCache(%d,%d) shape wrong", c[0], c[1])
		}
	}
}

func TestMissThenHit(t *testing.T) {
	c := NewCache(16, 4)
	if c.Lookup(0x1000) != nil {
		t.Fatal("empty cache hit")
	}
	e, recycled := c.Allocate(0x1000)
	if recycled {
		t.Fatal("allocation in empty cache reported recycled")
	}
	e.Hist = history.New(6)
	got := c.Lookup(0x1000)
	if got == nil || got.PC() != 0x1000 {
		t.Fatal("lookup after allocate missed")
	}
	if got != e {
		t.Fatal("lookup returned a different entry")
	}
}

func TestConflictWithinSetLRU(t *testing.T) {
	// 8 entries, 2-way: 4 sets. PCs with identical index bits collide.
	c := NewCache(8, 2)
	// index = (pc>>2) & 3. Use pcs with index 1: pc>>2 in {1,5,9,...}
	pcs := []uint32{1 << 2, 5 << 2, 9 << 2}
	c.Allocate(pcs[0])
	c.Allocate(pcs[1])
	// Touch pcs[0] so pcs[1] becomes LRU.
	if c.Lookup(pcs[0]) == nil {
		t.Fatal("expected hit")
	}
	_, recycled := c.Allocate(pcs[2])
	if !recycled {
		t.Fatal("conflict allocation should recycle")
	}
	if c.Lookup(pcs[0]) == nil {
		t.Fatal("LRU evicted the most recently used entry")
	}
	if c.Lookup(pcs[1]) != nil {
		t.Fatal("LRU failed to evict the least recently used entry")
	}
}

func TestDirectMappedConflicts(t *testing.T) {
	c := NewCache(4, 1)
	a, b := uint32(0<<2), uint32(4<<2) // same index 0
	c.Allocate(a)
	_, recycled := c.Allocate(b)
	if !recycled {
		t.Fatal("direct-mapped conflict should recycle")
	}
	if c.Lookup(a) != nil {
		t.Fatal("direct-mapped did not evict")
	}
}

func TestAllocateSamePCNotRecycled(t *testing.T) {
	c := NewCache(8, 2)
	c.Allocate(0x40)
	_, recycled := c.Allocate(0x40)
	if recycled {
		t.Fatal("re-allocating the same branch must not report recycled")
	}
}

func TestFlushInvalidatesAll(t *testing.T) {
	c := NewCache(16, 4)
	for i := uint32(0); i < 16; i++ {
		c.Allocate(i * 4)
	}
	c.Flush()
	for i := uint32(0); i < 16; i++ {
		if c.Lookup(i*4) != nil {
			t.Fatalf("entry %d survived flush", i)
		}
	}
}

func TestCacheNeverExceedsCapacityProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		c := NewCache(32, 4)
		r := rng.New(seed)
		live := make(map[uint32]bool)
		for i := 0; i < 500; i++ {
			pc := uint32(r.Intn(4096)) << 2
			if c.Lookup(pc) == nil {
				c.Allocate(pc)
			}
			live[pc] = true
		}
		// Count how many of the touched PCs still hit; must be <= 32.
		hits := 0
		for pc := range live {
			if c.Lookup(pc) != nil {
				hits++
			}
		}
		return hits <= 32
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkingSetSmallerThanWayFitsEntirely(t *testing.T) {
	// Any working set that maps <= assoc branches per set never misses
	// after warm-up: with 64 entries 4-way and 16 sets, 16 branches with
	// distinct indices all stick.
	c := NewCache(64, 4)
	var pcs []uint32
	for i := uint32(0); i < 16; i++ {
		pcs = append(pcs, i<<2)
	}
	for _, pc := range pcs {
		c.Allocate(pc)
	}
	for round := 0; round < 10; round++ {
		for _, pc := range pcs {
			if c.Lookup(pc) == nil {
				t.Fatalf("resident branch %x missed", pc)
			}
		}
	}
}

func TestIdealNeverForgets(t *testing.T) {
	id := NewIdeal()
	if id.Lookup(0x10) != nil {
		t.Fatal("empty ideal table hit")
	}
	e, recycled := id.Allocate(0x10)
	if recycled {
		t.Fatal("ideal allocation reported recycled")
	}
	e.Pred = true
	for i := uint32(0); i < 10000; i++ {
		id.Allocate(0x1000 + i*4)
	}
	got := id.Lookup(0x10)
	if got == nil || !got.Pred {
		t.Fatal("ideal table lost an entry under pressure")
	}
	if id.Known() != 10001 {
		t.Fatalf("Known = %d, want 10001", id.Known())
	}
	if id.Entries() != 0 {
		t.Fatal("ideal table should report unbounded capacity")
	}
}

func TestIdealFlushRevivesSameSlot(t *testing.T) {
	id := NewIdeal()
	e, _ := id.Allocate(0x20)
	e.State = 2
	id.Flush()
	if id.Lookup(0x20) != nil {
		t.Fatal("flushed entry still hits")
	}
	revived, recycled := id.Allocate(0x20)
	if recycled {
		t.Fatal("revival must not report recycled")
	}
	if revived != e || revived.State != 2 {
		t.Fatal("revived entry lost its slot state (PAp pattern history must survive flushes)")
	}
}

func TestEntryPayloadSurvivesLookups(t *testing.T) {
	c := NewCache(8, 2)
	e, _ := c.Allocate(0x100)
	e.Hist = history.New(6)
	e.Hist.Shift(false)
	e.Target = 0xdeadbee0
	got := c.Lookup(0x100)
	if got.Target != 0xdeadbee0 || got.Hist.Pattern() != 0 {
		t.Fatal("payload fields did not survive")
	}
}

func TestLRUStampOverflowResistance(t *testing.T) {
	// Stamps are uint64; just confirm monotonic behaviour over many ops.
	c := NewCache(4, 4)
	for i := 0; i < 100000; i++ {
		pc := uint32(i%4) << 2
		if c.Lookup(pc) == nil {
			c.Allocate(pc)
		}
	}
	// All four still resident.
	for i := uint32(0); i < 4; i++ {
		if c.Lookup(i<<2) == nil {
			t.Fatal("resident entry evicted")
		}
	}
}

func BenchmarkCacheLookupHit(b *testing.B) {
	c := NewCache(512, 4)
	for i := uint32(0); i < 512; i++ {
		c.Allocate(i << 2)
	}
	for i := 0; i < b.N; i++ {
		c.Lookup(uint32(i%512) << 2)
	}
}

func BenchmarkCacheMissAllocate(b *testing.B) {
	c := NewCache(512, 4)
	for i := 0; i < b.N; i++ {
		pc := uint32(i) << 2
		if c.Lookup(pc) == nil {
			c.Allocate(pc)
		}
	}
}
