package sim

import (
	"testing"

	"twolevel/internal/automaton"
	"twolevel/internal/predictor"
	"twolevel/internal/trace"
)

func TestTargetCachingMeasured(t *testing.T) {
	// A single always-taken branch with a fixed target: after the first
	// resolution the cached target is always right.
	tr := &trace.Trace{}
	for i := 0; i < 200; i++ {
		tr.Append(trace.Event{Instrs: 1, Branch: trace.Branch{
			PC: 0x100, Target: 0x80, Class: trace.Cond, Taken: true,
		}})
	}
	res, err := Run(pagA2(6), tr.Reader(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TargetPredictions == 0 {
		t.Fatal("no target predictions counted")
	}
	// The only miss window is before the first update.
	if res.TargetRate() < 0.99 {
		t.Fatalf("stable target should be ~100%% cached: %.3f", res.TargetRate())
	}
}

func TestTargetCachingAlternatingTargets(t *testing.T) {
	// The branch alternates between two targets: the cached target is
	// stale half the time — the §3.2 bubble a changing target causes.
	tr := &trace.Trace{}
	for i := 0; i < 400; i++ {
		target := uint32(0x80)
		if i%2 == 1 {
			target = 0x60
		}
		tr.Append(trace.Event{Instrs: 1, Branch: trace.Branch{
			PC: 0x100, Target: target, Class: trace.Cond, Taken: true,
		}})
	}
	res, err := Run(pagA2(6), tr.Reader(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TargetRate() > 0.2 {
		t.Fatalf("alternating target should mostly miss the cache: %.3f", res.TargetRate())
	}
}

func TestTargetCountingOnlyOnPredictedTakenTaken(t *testing.T) {
	// Not-taken branches contribute no target measurements.
	tr := &trace.Trace{}
	for i := 0; i < 100; i++ {
		tr.Append(trace.Event{Instrs: 1, Branch: trace.Branch{
			PC: 0x200, Target: 0x100, Class: trace.Cond, Taken: false,
		}})
	}
	res, err := Run(pagA2(6), tr.Reader(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TargetPredictions != 0 {
		t.Fatalf("not-taken branches produced %d target predictions", res.TargetPredictions)
	}
}

func TestTargetNotMeasuredForSchemesWithoutCache(t *testing.T) {
	tr := alternatingTrace(0x100, 100)
	res, err := Run(predictor.AlwaysTaken{}, tr.Reader(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TargetPredictions != 0 {
		t.Fatal("AlwaysTaken cannot cache targets")
	}
	// GAg keeps no per-branch state either.
	g := predictor.MustTwoLevel(predictor.TwoLevelConfig{
		Variation: predictor.GAg, HistoryBits: 6, Automaton: automaton.A2,
	})
	res, err = Run(g, alternatingTrace(0x100, 100).Reader(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TargetPredictions != 0 {
		t.Fatal("GAg should not produce target predictions")
	}
}

func TestBTBTargetCaching(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 200; i++ {
		tr.Append(trace.Event{Instrs: 1, Branch: trace.Branch{
			PC: 0x300, Target: 0x200, Class: trace.Cond, Taken: true,
		}})
	}
	p := predictor.MustBTB(predictor.BTBConfig{Entries: 512, Assoc: 4, Automaton: automaton.A2})
	res, err := Run(p, tr.Reader(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TargetRate() < 0.99 {
		t.Fatalf("BTB target rate %.3f", res.TargetRate())
	}
}

func TestTargetRateEmpty(t *testing.T) {
	var r Result
	if r.TargetRate() != 0 {
		t.Fatal("empty TargetRate should be 0")
	}
}
