package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"twolevel/internal/faultinject"
	"twolevel/internal/spec"
)

// Kernel cancellation chaos: a deterministic countdown context
// (faultinject.CtxAfter) cancels the flat kernel mid-replay at an exact
// poll count. The contract under test is twofold: the kernel must stop
// within one 4096-event poll window of the cancellation, and the state
// it writes back must describe the exact consumed prefix — an
// interpretive continuation from there is bit-identical to a run that
// was never cancelled on the fast path at all. The sharded kernel is
// the hard case: workers observe cancellation at different aligned poll
// indices and must catch up to a common boundary before writeback.

func TestKernelCancelResumesInterpretively(t *testing.T) {
	snap := kernelSnapshot(40_000)
	cases := []struct {
		name  string
		spec  string
		polls int64
		opts  Options
	}{
		{"serial-GAg", "GAg(HR(1,,8-sr),1xPHT(2^8,A2))", 2, Options{}},
		{"serial-PAg", "PAg(BHT(512,4,10-sr),1xPHT(2^10,A2))", 3, Options{}},
		{"serial-PAp-cs", "PAp(BHT(512,4,6-sr),512xPHT(2^6,A2))", 2, Options{ContextSwitches: true, CSInterval: 1009}},
		{"sharded-PAp", "PAp(BHT(512,4,6-sr),512xPHT(2^6,A2))", 4, Options{Shards: 4}},
		{"sharded-SAs", "SAs(SHT(64,,8-sr),16xPHT(2^8,A2))", 6, Options{Shards: 8}},
		{"sharded-PAs-cs", "PAs(BHT(512,4,8-sr),16xPHT(2^8,A2))", 4, Options{ContextSwitches: true, CSInterval: 1711, Shards: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := spec.MustParse(tc.spec)
			ctx := &faultinject.CtxAfter{N: tc.polls}

			fastOpts := tc.opts
			fastOpts.Context = ctx
			fastP := buildKernelSpec(t, sp, snap)
			fastSrc := snap.Reader()
			if !FastpathEligible(fastP, fastSrc, fastOpts) {
				t.Fatal("expected fast-path eligibility")
			}
			got1, err := Run(fastP, fastSrc, fastOpts)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			consumed := fastSrc.Pos()
			if consumed == 0 {
				t.Fatal("cancelled kernel run consumed nothing")
			}
			// Stop bound: at most N successful polls pass aligned
			// 4096-event boundaries, so the furthest stop — even with
			// sharded workers racing the shared countdown — is one poll
			// window past the last success.
			if limit := int(tc.polls+1) * cancelCheckInterval; consumed > limit {
				t.Fatalf("consumed %d events, want <= %d (one poll window past cancellation)", consumed, limit)
			}
			if got1.Accuracy.Predictions == 0 {
				t.Fatal("cancelled kernel run returned no partial counters")
			}

			// Reference arm: the same prefix replayed interpretively on
			// a fresh predictor, then run to completion.
			slowOpts := tc.opts
			slowOpts.Shards = 0
			slowOpts.DisableFastpath = true
			slowP := buildKernelSpec(t, sp, snap)
			slowSrc := snap.Reader()
			want1, err := Run(slowP, &faultinject.Truncate{Src: slowSrc, N: uint64(consumed)}, slowOpts)
			if err != nil {
				t.Fatalf("interpretive prefix: %v", err)
			}
			// The cancelled kernel's partial counters must equal the
			// interpretive run over the same prefix.
			if !reflect.DeepEqual(got1, want1) {
				t.Errorf("partial counters differ from interpretive prefix:\n got %+v\nwant %+v", got1, want1)
			}
			want2, err := Run(slowP, slowSrc, Options{DisableFastpath: true})
			if err != nil {
				t.Fatalf("interpretive continuation (reference): %v", err)
			}

			// The writeback arm: continue interpretively from exactly
			// where the cancelled kernel left predictor and reader.
			got2, err := Run(fastP, fastSrc, Options{DisableFastpath: true})
			if err != nil {
				t.Fatalf("interpretive continuation (after cancel): %v", err)
			}
			if !reflect.DeepEqual(got2, want2) {
				t.Errorf("continuation after cancelled kernel differs:\n got %+v\nwant %+v", got2, want2)
			}
		})
	}
}

// TestKernelCancelSourceUntouched pins the reader contract: a cancelled
// kernel run leaves the SnapshotReader exactly at the consumed prefix
// boundary, never past it.
func TestKernelCancelSourceUntouched(t *testing.T) {
	snap := kernelSnapshot(40_000)
	for _, shards := range []int{0, 4} {
		ctx := &faultinject.CtxAfter{N: 1}
		p := buildKernelSpec(t, spec.MustParse("PAp(BHT(512,4,6-sr),512xPHT(2^6,A2))"), snap)
		src := snap.Reader()
		_, err := Run(p, src, Options{Context: ctx, Shards: shards})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("shards=%d: err = %v", shards, err)
		}
		pos := src.Pos()
		if pos <= 0 || pos >= snap.Len() {
			t.Fatalf("shards=%d: reader at %d of %d, want a strict mid-trace prefix", shards, pos, snap.Len())
		}
		// The next read must yield the event at the boundary, proving
		// the position is byte-exact, not merely approximate.
		e, readErr := src.Next()
		if readErr != nil {
			t.Fatalf("shards=%d: read at boundary: %v", shards, readErr)
		}
		if want := snap.At(pos); !reflect.DeepEqual(e, want) {
			t.Errorf("shards=%d: event at boundary differs: got %+v want %+v", shards, e, want)
		}
	}
}

// TestCtxAfterCountdown pins the injector itself: exactly N live polls,
// then context.Canceled forever, usable concurrently.
func TestCtxAfterCountdown(t *testing.T) {
	ctx := &faultinject.CtxAfter{N: 3}
	for i := 0; i < 3; i++ {
		if err := ctx.Err(); err != nil {
			t.Fatalf("poll %d: err = %v, want nil", i+1, err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := ctx.Err(); !errors.Is(err, context.Canceled) {
			t.Fatalf("post-countdown poll: err = %v, want context.Canceled", err)
		}
	}
	if ctx.Polls() != 5 {
		t.Errorf("polls = %d, want 5", ctx.Polls())
	}
	if _, ok := ctx.Deadline(); ok || ctx.Done() != nil || ctx.Value("k") != nil {
		t.Error("CtxAfter must expose no deadline, no done channel, no values")
	}
	var _ context.Context = ctx
}
