package sim

import (
	"fmt"
	"io"

	"twolevel/internal/telemetry"
	"twolevel/internal/trace"
)

// Multiplex interleaves several trace sources at a fixed instruction
// quantum, emitting a trap event at every switch point — a *real*
// context-switch workload rather than the paper's model of flushing the
// tables of a single process (§5.1.4 approximates a switch by
// reinitialising the branch history table; multiplexing instead lets the
// processes genuinely pollute each other's predictor state).
//
// Branch addresses from each source are tagged with a per-process offset
// in the high address bits, as distinct processes' code occupies distinct
// addresses. An event that would cross the quantum boundary is held and
// delivered when its process next runs, like a process resuming where it
// stopped.
type Multiplex struct {
	sources []trace.Source
	pending []*trace.Event // per-source held event
	quantum uint64
	current int
	used    uint64
	// Switches counts the quantum expirations so far.
	Switches uint64
	// Observer, when non-nil, is notified (OnContextSwitch) at every
	// quantum expiration — the multiplexer's switches are genuine
	// context switches even though the simulator's flush model is
	// usually disabled for multiplexed runs. Attach the same observer
	// via sim.Options to get run-scoped Start/Finish; the multiplexer
	// itself never calls them.
	Observer telemetry.Observer
}

// NewMultiplex interleaves sources round-robin every quantum instructions
// (0 uses the paper's 500k). At least two sources are required.
func NewMultiplex(sources []trace.Source, quantum uint64) (*Multiplex, error) {
	if len(sources) < 2 {
		return nil, fmt.Errorf("sim: multiplexing needs at least two sources")
	}
	if quantum == 0 {
		quantum = DefaultCSInterval
	}
	return &Multiplex{
		sources: sources,
		pending: make([]*trace.Event, len(sources)),
		quantum: quantum,
	}, nil
}

// Next implements trace.Source. The stream ends when any process's
// source ends.
func (m *Multiplex) Next() (trace.Event, error) {
	var e trace.Event
	if held := m.pending[m.current]; held != nil {
		e, m.pending[m.current] = *held, nil
	} else {
		var err error
		e, err = m.sources[m.current].Next()
		if err == io.EOF {
			return trace.Event{}, io.EOF
		}
		if err != nil {
			return trace.Event{}, err
		}
	}
	// Quantum check: hold the event for this process's next turn unless
	// the quantum is freshly started (an oversized event must still make
	// progress).
	if m.used+uint64(e.Instrs) > m.quantum && m.used > 0 {
		held := e
		m.pending[m.current] = &held
		m.used = 0
		m.current = (m.current + 1) % len(m.sources)
		m.Switches++
		if m.Observer != nil {
			m.Observer.OnContextSwitch()
		}
		return trace.Event{Trap: true, Instrs: 0}, nil
	}
	m.used += uint64(e.Instrs)
	if !e.Trap {
		offset := uint32(m.current) << 28
		e.Branch.PC ^= offset
		e.Branch.Target ^= offset
	}
	return e, nil
}

var _ trace.Source = (*Multiplex)(nil)
