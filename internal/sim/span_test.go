package sim

// Span-threading suite: Run and RunMany attribute replay latency under
// the caller's parent span, and the nil-span path stays allocation-free
// — the same zero-cost-when-nil contract the Observer field carries.

import (
	"testing"

	"twolevel/internal/predictor"
	"twolevel/internal/span"
)

func TestRunEmitsReplaySpan(t *testing.T) {
	tr := span.New()
	root := tr.Root("suite")
	p := observerTestPredictor(t)
	src := observerTrace(2000).Reader()
	if _, err := Run(p, src, Options{MaxCondBranches: 500, Span: root}); err != nil {
		t.Fatal(err)
	}
	root.End()
	recs := tr.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want root + replay", len(recs))
	}
	var found bool
	for _, r := range recs {
		if r.Name != "replay" {
			continue
		}
		found = true
		if r.Path != "suite/replay" {
			t.Errorf("replay path = %q", r.Path)
		}
		if got := attrValue(r.Attrs, "budget"); got != "500" {
			t.Errorf("budget attr = %q, want 500", got)
		}
	}
	if !found {
		t.Fatalf("no replay span recorded: %+v", recs)
	}
}

// TestRunManySingleReplaySpan: a batched pass is one shared replay, so
// exactly one span covers it no matter how many option sets carry the
// parent.
func TestRunManySingleReplaySpan(t *testing.T) {
	tr := span.New()
	root := tr.Root("suite")
	const n = 3
	preds := make([]predictor.Predictor, n)
	opts := make([]Options, n)
	for i := range preds {
		preds[i] = observerTestPredictor(t)
		opts[i] = Options{MaxCondBranches: 500, Span: root}
	}
	if _, err := RunMany(preds, observerTrace(2000).Reader(), opts); err != nil {
		t.Fatal(err)
	}
	root.End()
	replays := 0
	for _, r := range tr.Snapshot() {
		if r.Name == "replay" {
			replays++
			if got := attrValue(r.Attrs, "batch"); got != "3" {
				t.Errorf("batch attr = %q, want 3", got)
			}
		}
	}
	if replays != 1 {
		t.Fatalf("got %d replay spans for one shared pass, want 1", replays)
	}
}

// TestNilSpanAllocationFree extends the nil-observer contract to the
// Span field: leaving it nil must add no allocations to a run.
func TestNilSpanAllocationFree(t *testing.T) {
	tr := observerTrace(4096)
	p := observerTestPredictor(t)
	rd := tr.Reader()
	if _, err := Run(p, rd, Options{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		rd.Reset()
		if _, err := Run(p, rd, Options{Span: nil}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("nil-span sim.Run allocated %.1f times per run, want 0", allocs)
	}
}

// attrValue returns the value of the named attr, "" when absent.
func attrValue(attrs []span.Attr, key string) string {
	for _, a := range attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}
