// Single-pass multi-predictor replay: RunMany drives N predictors down
// one decode pass of a trace source, the engine behind the experiment
// suite's same-benchmark batching.
package sim

import (
	"context"
	"fmt"
	"io"

	"twolevel/internal/predictor"
	"twolevel/internal/span"
	"twolevel/internal/telemetry"
	"twolevel/internal/trace"
)

// RunMany simulates every predictor in preds over a single pass of src,
// with per-predictor options: each event is decoded once and fed to all
// still-active predictors. Results are bit-identical to running each
// (predictor, options) pair serially with Run over its own copy of the
// stream — budgets, context-switch modes, pipeline depths and observers
// may all differ per predictor; a predictor whose budget is reached
// simply stops consuming while the pass continues for the rest.
//
// preds must be distinct predictor instances (they are mutated). opts
// must have one entry per predictor. On a source error the partial
// results collected so far are returned alongside the error.
//
// Cancellation: the pass is shared, so a cancelled Context on any option
// set aborts the whole pass with that context's error and the partial
// results collected so far (batched predictors cannot outlive the decode
// pass they ride).
func RunMany(preds []predictor.Predictor, src trace.Source, opts []Options) ([]Result, error) {
	if len(opts) != len(preds) {
		return nil, fmt.Errorf("sim: RunMany got %d predictors but %d option sets", len(preds), len(opts))
	}
	runners := make([]runner, len(preds))
	var ctxs []context.Context
	// The pass is shared, so one "replay" span covers it: the first
	// non-nil parent among the option sets adopts it (the experiment
	// scheduler hands every batch member the same parent).
	var passSpan *span.Span
	for i := range opts {
		if parent := opts[i].Span; parent != nil {
			passSpan = parent.Child("replay", span.Int("batch", len(preds)))
			break
		}
	}
	defer passSpan.End()
	for i, p := range preds {
		runners[i] = newRunner(p, opts[i])
		if obs := opts[i].Observer; obs != nil {
			obs.Start(telemetry.RunInfo{Predictor: p})
		}
		if ctx := opts[i].Context; ctx != nil {
			dup := false
			for _, c := range ctxs {
				if c == ctx {
					dup = true
					break
				}
			}
			if !dup {
				ctxs = append(ctxs, ctx)
			}
		}
	}
	results := func() []Result {
		out := make([]Result, len(runners))
		for i := range runners {
			out[i] = runners[i].res
		}
		return out
	}
	finishObservers := func() {
		for i := range runners {
			if obs := opts[i].Observer; obs != nil {
				obs.Finish()
			}
		}
	}
	var sinceCheck uint32
	for {
		// ready must be polled on every runner each round: it performs
		// the budget-reached drain transition.
		active := false
		for i := range runners {
			if runners[i].ready() {
				active = true
			}
		}
		if !active {
			break
		}
		if ctxs != nil {
			if sinceCheck++; sinceCheck >= cancelCheckInterval {
				sinceCheck = 0
				for _, ctx := range ctxs {
					if err := ctx.Err(); err != nil {
						finishObservers()
						return results(), err
					}
				}
			}
		}
		e, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			finishObservers()
			return results(), err
		}
		for i := range runners {
			if !runners[i].done {
				runners[i].step(e)
			}
		}
	}
	for i := range runners {
		runners[i].finish()
	}
	finishObservers()
	return results(), nil
}
