// Single-pass multi-predictor replay: RunMany drives N predictors down
// one decode pass of a trace source, the engine behind the experiment
// suite's same-benchmark batching.
package sim

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"

	"twolevel/internal/predictor"
	"twolevel/internal/sim/fastpath"
	"twolevel/internal/span"
	"twolevel/internal/telemetry"
	"twolevel/internal/trace"
)

// RunMany simulates every predictor in preds over a single pass of src,
// with per-predictor options: each event is decoded once and fed to all
// still-active predictors. Results are bit-identical to running each
// (predictor, options) pair serially with Run over its own copy of the
// stream — budgets, context-switch modes, pipeline depths and observers
// may all differ per predictor; a predictor whose budget is reached
// simply stops consuming while the pass continues for the rest.
//
// preds must be distinct predictor instances (they are mutated). opts
// must have one entry per predictor. On a source error the partial
// results collected so far are returned alongside the error.
//
// Cancellation: the pass is shared, so a cancelled Context on any option
// set aborts the whole pass with that context's error and the partial
// results collected so far (batched predictors cannot outlive the decode
// pass they ride).
func RunMany(preds []predictor.Predictor, src trace.Source, opts []Options) ([]Result, error) {
	if len(opts) != len(preds) {
		return nil, fmt.Errorf("sim: RunMany got %d predictors but %d option sets", len(preds), len(opts))
	}
	out := make([]Result, len(preds))

	// Partition the batch: cells the flat kernel serves replay the packed
	// snapshot concurrently (one goroutine per cell, bounded by
	// GOMAXPROCS); the rest ride the interpretive shared pass below. The
	// kernel cells never touch src, so the shared pass starts from the
	// same position they did; afterwards the reader is advanced to the
	// furthest position any cell consumed, as one serial pass would have.
	sr, _ := src.(*trace.SnapshotReader)
	var fastIdx []int
	var kernels []*fastpath.Kernel
	if sr != nil {
		for i, p := range preds {
			if !FastpathEligible(p, src, opts[i]) {
				continue
			}
			if k, ok := fastpath.New(p, fastpathConfig(opts[i])); ok {
				fastIdx = append(fastIdx, i)
				kernels = append(kernels, k)
			}
		}
	}
	var slowIdx []int
	{
		isFast := make([]bool, len(preds))
		for _, i := range fastIdx {
			isFast[i] = true
		}
		for i := range preds {
			if !isFast[i] {
				slowIdx = append(slowIdx, i)
			}
		}
	}

	// The pass is shared, so one "replay" span covers it: the first
	// non-nil parent among the option sets adopts it (the experiment
	// scheduler hands every batch member the same parent).
	var passSpan *span.Span
	for i := range opts {
		if parent := opts[i].Span; parent != nil {
			passSpan = parent.Child("replay",
				span.Int("batch", len(preds)),
				span.Int("fastcells", len(fastIdx)),
				span.Bool("fastpath", len(fastIdx) == len(preds)))
			break
		}
	}
	defer passSpan.End()

	start := 0
	if sr != nil {
		start = sr.Pos()
	}
	var consumedFast int
	if len(kernels) > 0 {
		snap := sr.Snapshot()
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		errs := make([]error, len(kernels))
		consumed := make([]int, len(kernels))
		var wg sync.WaitGroup
		for j := range kernels {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				var c fastpath.Counters
				c, consumed[j], errs[j] = kernels[j].Run(snap, start)
				out[fastIdx[j]] = countersToResult(c)
				opts[fastIdx[j]].Telemetry.fillFromKernel(kernels[j].Telemetry())
			}(j)
		}
		wg.Wait()
		for j := range kernels {
			if consumed[j] > consumedFast {
				consumedFast = consumed[j]
			}
			if errs[j] != nil {
				// A cancelled cell aborts the whole batch, matching the
				// shared-pass contract; partial results stand.
				seekPast(sr, start+consumedFast)
				return out, errs[j]
			}
		}
		if len(slowIdx) == 0 {
			seekPast(sr, start+consumedFast)
			return out, nil
		}
	}

	runners := make([]runner, len(slowIdx))
	slowOpts := make([]Options, len(slowIdx))
	var harvests []func()
	var ctxs []context.Context
	for si, i := range slowIdx {
		o, harvest := attachTelemetry(opts[i])
		if harvest != nil {
			harvests = append(harvests, harvest)
		}
		slowOpts[si] = o
		runners[si] = newRunner(preds[i], o)
		if obs := o.Observer; obs != nil {
			obs.Start(telemetry.RunInfo{Predictor: preds[i]})
		}
		if ctx := o.Context; ctx != nil {
			dup := false
			for _, c := range ctxs {
				if c == ctx {
					dup = true
					break
				}
			}
			if !dup {
				ctxs = append(ctxs, ctx)
			}
		}
	}
	results := func() []Result {
		for si, i := range slowIdx {
			out[i] = runners[si].res
		}
		return out
	}
	finishObservers := func() {
		for si := range slowIdx {
			if obs := slowOpts[si].Observer; obs != nil {
				obs.Finish()
			}
		}
		// Harvest after Finish so the final partial interval is flushed.
		for _, h := range harvests {
			h()
		}
	}
	var sinceCheck uint32
	for {
		// ready must be polled on every runner each round: it performs
		// the budget-reached drain transition.
		active := false
		for i := range runners {
			if runners[i].ready() {
				active = true
			}
		}
		if !active {
			break
		}
		if ctxs != nil {
			if sinceCheck++; sinceCheck >= cancelCheckInterval {
				sinceCheck = 0
				for _, ctx := range ctxs {
					if err := ctx.Err(); err != nil {
						finishObservers()
						seekPast(sr, start+consumedFast)
						return results(), err
					}
				}
			}
		}
		e, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			finishObservers()
			seekPast(sr, start+consumedFast)
			return results(), err
		}
		for i := range runners {
			if !runners[i].done {
				runners[i].step(e)
			}
		}
	}
	for i := range runners {
		runners[i].finish()
	}
	finishObservers()
	seekPast(sr, start+consumedFast)
	return results(), nil
}

// seekPast advances sr to pos when the interpretive pass stopped short of
// the furthest kernel cell (a nil reader or an already-further position
// is a no-op), so the source ends where one serial pass would have left
// it.
func seekPast(sr *trace.SnapshotReader, pos int) {
	if sr != nil && pos > sr.Pos() {
		sr.Seek(pos)
	}
}
