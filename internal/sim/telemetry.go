// Kernel-native run telemetry: the Options.Telemetry sink requests the
// interval accuracy series and the per-PC mispredict profile without
// costing fastpath eligibility. On the kernel path the flat loops
// accumulate the counters natively (fastpath.Tap); on the interpretive
// path Run/RunMany attach the legacy observers internally and harvest
// them into the same sink, so both paths produce bit-identical outputs.
package sim

import (
	"sort"

	"twolevel/internal/telemetry"
	"twolevel/internal/trace"
)

// telemetryWarmupFrac matches ForensicsConfig's default warmup share of
// the branch budget for the per-PC warmup-miss split.
const telemetryWarmupFrac = 0.1

// Telemetry requests kernel-native run telemetry. Unlike Options.Observer
// it does not forfeit fastpath eligibility: the flat kernel accumulates
// the samples in its hot loops, and the interpretive runner serves the
// same sink through internal observers when the kernel declines the run.
// Outputs are populated when Run (or RunMany, per cell) returns —
// including on cancellation, where they describe the consumed prefix. A
// Telemetry value is single-use; attach a fresh one per run.
type Telemetry struct {
	// Interval, when > 0, samples prediction accuracy every Interval
	// resolved conditional branches (telemetry.IntervalSeries
	// semantics, bit-identical by the equivalence suite).
	Interval uint64
	// TopK, when > 0, profiles per-PC mispredicts and reports the TopK
	// worst branches (telemetry.HotBranches order) with the warmup-miss
	// split the streaming verdict classifier consumes.
	TopK int

	// Samples is the interval accuracy series (nil when Interval == 0).
	Samples []telemetry.Sample
	// Switches is the resolved-branch index at each context switch
	// (nil when Interval == 0).
	Switches []uint64
	// TopMispredicted is the per-PC profile (nil when TopK == 0).
	TopMispredicted []telemetry.PCStats
}

// enabled reports whether the sink requests any accumulation.
func (t *Telemetry) enabled() bool {
	return t != nil && (t.Interval > 0 || t.TopK > 0)
}

// warmupBoundary is the resolved-branch index bounding the warmup-miss
// split, mirroring Forensics' default (0 when the budget is unknown).
func warmupBoundary(budget uint64) uint64 {
	return uint64(float64(budget) * telemetryWarmupFrac)
}

// fillFromKernel harvests the kernel tap's materialised outputs.
func (t *Telemetry) fillFromKernel(samples []telemetry.Sample, switches []uint64, profile []telemetry.PCStats) {
	if t == nil {
		return
	}
	t.Samples, t.Switches, t.TopMispredicted = samples, switches, profile
}

// attachTelemetry rewires opts for an interpretive run serving a
// Telemetry sink: the legacy observers are joined onto opts.Observer and
// a harvest function transfers their outputs into the sink. The caller
// must invoke harvest after the observers' Finish (which flushes the
// final partial interval). Returns opts unchanged and a nil harvest when
// the sink is absent or empty.
func attachTelemetry(opts Options) (Options, func()) {
	t := opts.Telemetry
	if !t.enabled() {
		return opts, nil
	}
	var iv *telemetry.IntervalSeries
	var ps *pcProfiler
	obs := []telemetry.Observer{opts.Observer}
	if t.Interval > 0 {
		iv = telemetry.NewIntervalSeries(t.Interval)
		obs = append(obs, iv)
	}
	if t.TopK > 0 {
		ps = newPCProfiler(warmupBoundary(opts.MaxCondBranches))
		obs = append(obs, ps)
	}
	opts.Observer = telemetry.Multi(obs...)
	return opts, func() {
		if iv != nil {
			t.Samples, t.Switches = iv.Samples(), iv.Switches()
		}
		if ps != nil {
			t.TopMispredicted = ps.report(t.TopK)
		}
	}
}

// pcProfiler is the interpretive twin of the kernel tap's per-PC
// profile: telemetry.HotBranches' counters plus the warmup-miss split,
// with identical report semantics so both paths are bit-identical.
type pcProfiler struct {
	telemetry.NopObserver
	warmup uint64
	seq    uint64
	counts map[uint32]*pcCount
}

type pcCount struct {
	exec, taken, miss, warmupMiss uint64
}

func newPCProfiler(warmup uint64) *pcProfiler {
	return &pcProfiler{warmup: warmup, counts: make(map[uint32]*pcCount)}
}

// OnResolve implements telemetry.Observer.
func (p *pcProfiler) OnResolve(b trace.Branch, predicted, correct bool) {
	p.seq++
	c := p.counts[b.PC]
	if c == nil {
		c = &pcCount{}
		p.counts[b.PC] = c
	}
	c.exec++
	if b.Taken {
		c.taken++
	}
	if !correct {
		c.miss++
		if p.warmup > 0 && p.seq <= p.warmup {
			c.warmupMiss++
		}
	}
}

// report renders the top-k rows (mispredicts descending, PC ascending).
func (p *pcProfiler) report(k int) []telemetry.PCStats {
	var misses uint64
	for _, c := range p.counts {
		misses += c.miss
	}
	all := make([]telemetry.PCStats, 0, len(p.counts))
	for pc, c := range p.counts {
		row := telemetry.PCStats{
			PC:           pc,
			Executions:   c.exec,
			Taken:        c.taken,
			Mispredicts:  c.miss,
			WarmupMisses: c.warmupMiss,
		}
		if c.exec > 0 {
			row.TakenRate = float64(c.taken) / float64(c.exec)
		}
		if misses > 0 {
			row.MissShare = float64(c.miss) / float64(misses)
		}
		all = append(all, row)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Mispredicts != b.Mispredicts {
			return a.Mispredicts > b.Mispredicts
		}
		return a.PC < b.PC
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}
