package sim

import (
	"testing"

	"twolevel/internal/automaton"
	"twolevel/internal/predictor"
	"twolevel/internal/trace"
)

// condEvent builds a conditional branch event.
func condEvent(pc uint32, taken bool, instrs uint32) trace.Event {
	return trace.Event{
		Instrs: instrs,
		Branch: trace.Branch{PC: pc, Target: pc - 16, Class: trace.Cond, Taken: taken},
	}
}

// alternatingTrace builds n alternating conditional branches at one PC.
func alternatingTrace(pc uint32, n int) *trace.Trace {
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		tr.Append(condEvent(pc, i%2 == 0, 5))
	}
	return tr
}

func pagA2(k int) *predictor.TwoLevel {
	return predictor.MustTwoLevel(predictor.TwoLevelConfig{
		Variation: predictor.PAg, HistoryBits: k, Automaton: automaton.A2, Entries: 512, Assoc: 4,
	})
}

// recorder wraps a predictor and records the call sequence.
type recorder struct {
	predictor.Predictor
	predicts, updates, switches int
}

func (r *recorder) Predict(b trace.Branch) bool {
	r.predicts++
	return r.Predictor.Predict(b)
}
func (r *recorder) Update(b trace.Branch, pred bool) {
	r.updates++
	r.Predictor.Update(b, pred)
}
func (r *recorder) ContextSwitch() {
	r.switches++
	r.Predictor.ContextSwitch()
}

func TestRunCountsAndAccuracy(t *testing.T) {
	tr := alternatingTrace(0x100, 200)
	res, err := Run(pagA2(6), tr.Reader(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy.Predictions != 200 {
		t.Fatalf("predictions = %d", res.Accuracy.Predictions)
	}
	if res.Instructions != 200*5 {
		t.Fatalf("instructions = %d", res.Instructions)
	}
	if res.TakenCond != 100 {
		t.Fatalf("taken = %d", res.TakenCond)
	}
	if res.Accuracy.Rate() < 0.85 {
		t.Fatalf("two-level should learn alternation: %v", res.Accuracy)
	}
	if res.ContextSwitches != 0 {
		t.Fatal("context switches disabled but injected")
	}
}

func TestRunMaxCondBranches(t *testing.T) {
	tr := alternatingTrace(0x100, 1000)
	res, err := Run(pagA2(6), tr.Reader(), Options{MaxCondBranches: 123})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy.Predictions != 123 {
		t.Fatalf("predictions = %d, want 123", res.Accuracy.Predictions)
	}
}

func TestRunNonConditionalsNotPredicted(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 50; i++ {
		tr.Append(condEvent(0x100, true, 1))
		tr.Append(trace.Event{Instrs: 1, Branch: trace.Branch{PC: 0x200, Target: 0x400, Class: trace.Call, Taken: true}})
		tr.Append(trace.Event{Instrs: 1, Branch: trace.Branch{PC: 0x404, Target: 0x204, Class: trace.Return, Taken: true}})
	}
	rec := &recorder{Predictor: pagA2(6)}
	res, err := Run(rec, tr.Reader(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy.Predictions != 50 || rec.predicts != 50 {
		t.Fatalf("only conditionals should be predicted: %d / %d", res.Accuracy.Predictions, rec.predicts)
	}
	if res.ByClass[trace.Call] != 50 || res.ByClass[trace.Return] != 50 {
		t.Fatalf("class counts wrong: %v", res.ByClass)
	}
}

func TestTrapTriggersContextSwitch(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(condEvent(0x100, true, 10))
	tr.Append(trace.Event{Trap: true, Instrs: 1})
	tr.Append(condEvent(0x100, true, 10))
	tr.Append(trace.Event{Trap: true, Instrs: 1})

	rec := &recorder{Predictor: pagA2(6)}
	res, err := Run(rec, tr.Reader(), Options{ContextSwitches: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Traps != 2 || res.ContextSwitches != 2 || rec.switches != 2 {
		t.Fatalf("traps=%d switches=%d rec=%d", res.Traps, res.ContextSwitches, rec.switches)
	}

	// Without the flag, traps are counted but do not flush.
	rec2 := &recorder{Predictor: pagA2(6)}
	res2, err := Run(rec2, tr.Reader(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Traps != 2 || res2.ContextSwitches != 0 || rec2.switches != 0 {
		t.Fatal("context switches should be off by default")
	}
}

func TestQuantumTriggersContextSwitch(t *testing.T) {
	// 100 branches x 10 instructions = 1000 instructions; with a 250
	// instruction quantum we expect 4 switches.
	tr := &trace.Trace{}
	for i := 0; i < 100; i++ {
		tr.Append(condEvent(0x100, true, 10))
	}
	res, err := Run(pagA2(6), tr.Reader(), Options{ContextSwitches: true, CSInterval: 250})
	if err != nil {
		t.Fatal(err)
	}
	if res.ContextSwitches != 4 {
		t.Fatalf("switches = %d, want 4", res.ContextSwitches)
	}
}

func TestTrapResetsQuantum(t *testing.T) {
	// Interval 100. 9 instructions, trap, 95 instructions: without the
	// trap reset there would be a switch at 100; with the reset the
	// quantum restarts at the trap, so exactly one switch (the trap's).
	tr := &trace.Trace{}
	tr.Append(condEvent(0x100, true, 9))
	tr.Append(trace.Event{Trap: true, Instrs: 1})
	for i := 0; i < 19; i++ {
		tr.Append(condEvent(0x100, true, 5))
	}
	res, err := Run(pagA2(6), tr.Reader(), Options{ContextSwitches: true, CSInterval: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.ContextSwitches != 1 {
		t.Fatalf("switches = %d, want 1 (trap only)", res.ContextSwitches)
	}
}

func TestDefaultCSInterval(t *testing.T) {
	// 600,000 instructions at the default quantum: one switch.
	tr := &trace.Trace{}
	for i := 0; i < 60; i++ {
		tr.Append(condEvent(0x100, true, 10000))
	}
	res, err := Run(pagA2(6), tr.Reader(), Options{ContextSwitches: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ContextSwitches != 1 {
		t.Fatalf("switches = %d, want 1 at the 500k default", res.ContextSwitches)
	}
}

func TestContextSwitchHurtsAccuracy(t *testing.T) {
	// A pattern-heavy trace with frequent flushes should predict no
	// better than the same trace without flushes.
	tr := alternatingTrace(0x100, 5000)
	clean, err := Run(pagA2(6), tr.Reader(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	churned, err := Run(pagA2(6), tr.Reader(), Options{ContextSwitches: true, CSInterval: 50})
	if err != nil {
		t.Fatal(err)
	}
	if churned.Accuracy.Rate() > clean.Accuracy.Rate() {
		t.Fatalf("flushing improved accuracy: %.4f > %.4f", churned.Accuracy.Rate(), clean.Accuracy.Rate())
	}
}

func TestPipelinedDepthZeroEquivalence(t *testing.T) {
	// Depth 0 must take the simple path; depth 1 with immediate drain
	// resolves one behind but on a single-branch alternating trace the
	// predictions count must match.
	tr := alternatingTrace(0x100, 500)
	d0, err := Run(pagA2(6), tr.Reader(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := Run(pagA2(6), tr.Reader(), Options{PipelineDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d0.Accuracy.Predictions != d1.Accuracy.Predictions {
		t.Fatalf("prediction counts differ: %d vs %d", d0.Accuracy.Predictions, d1.Accuracy.Predictions)
	}
}

func TestPipelinedStaleHistoryHurts(t *testing.T) {
	// With deep in-flight branches and non-speculative history, the
	// alternating branch is predicted from stale history: accuracy
	// collapses versus immediate resolution.
	tr := alternatingTrace(0x100, 4000)
	immediate, err := Run(pagA2(8), tr.Reader(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	stale, err := Run(pagA2(8), tr.Reader(), Options{PipelineDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if stale.Accuracy.Rate() >= immediate.Accuracy.Rate() {
		t.Fatalf("stale history should hurt: stale %.4f vs immediate %.4f",
			stale.Accuracy.Rate(), immediate.Accuracy.Rate())
	}
}

func TestPipelinedSpeculativeHistoryRecovers(t *testing.T) {
	// §3.1: speculative history update restores most of the loss.
	tr := alternatingTrace(0x100, 4000)
	base, err := Run(pagA2(8), tr.Reader(), Options{PipelineDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	specp := predictor.MustTwoLevel(predictor.TwoLevelConfig{
		Variation: predictor.PAg, HistoryBits: 8, Automaton: automaton.A2,
		Entries: 512, Assoc: 4, SpeculativeHistory: true,
	})
	spec, err := Run(specp, tr.Reader(), Options{PipelineDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Accuracy.Rate() <= base.Accuracy.Rate() {
		t.Fatalf("speculative history should help: %.4f <= %.4f",
			spec.Accuracy.Rate(), base.Accuracy.Rate())
	}
	if spec.Accuracy.Rate() < 0.95 {
		t.Fatalf("speculative history should nearly match immediate resolution: %.4f", spec.Accuracy.Rate())
	}
	if specp.InFlight() != 0 {
		t.Fatalf("in-flight queue not drained: %d", specp.InFlight())
	}
}

func TestPipelinedGAgSpeculative(t *testing.T) {
	tr := alternatingTrace(0x100, 4000)
	specp := predictor.MustTwoLevel(predictor.TwoLevelConfig{
		Variation: predictor.GAg, HistoryBits: 10, Automaton: automaton.A2,
		SpeculativeHistory: true,
	})
	res, err := Run(specp, tr.Reader(), Options{PipelineDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy.Rate() < 0.95 {
		t.Fatalf("speculative GAg on alternation: %.4f", res.Accuracy.Rate())
	}
}

func TestPipelinedWithContextSwitches(t *testing.T) {
	tr := &trace.Trace{}
	for i := 0; i < 300; i++ {
		tr.Append(condEvent(0x100, i%2 == 0, 10))
		if i%100 == 99 {
			tr.Append(trace.Event{Trap: true, Instrs: 1})
		}
	}
	specp := predictor.MustTwoLevel(predictor.TwoLevelConfig{
		Variation: predictor.PAg, HistoryBits: 6, Automaton: automaton.A2,
		Entries: 512, Assoc: 4, SpeculativeHistory: true,
	})
	res, err := Run(specp, tr.Reader(), Options{PipelineDepth: 4, ContextSwitches: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ContextSwitches != 3 {
		t.Fatalf("switches = %d, want 3", res.ContextSwitches)
	}
	if res.Accuracy.Predictions != 300 {
		t.Fatalf("predictions = %d, want 300", res.Accuracy.Predictions)
	}
}

func TestStaticSchemesUnderSim(t *testing.T) {
	tr := &trace.Trace{}
	// Backward loop branch taken 9/10.
	for i := 0; i < 1000; i++ {
		tr.Append(condEvent(0x1000, i%10 != 9, 1))
	}
	at, err := Run(predictor.AlwaysTaken{}, tr.Reader(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if at.Accuracy.Rate() != 0.9 {
		t.Fatalf("Always Taken on 90%% taken trace: %v", at.Accuracy.Rate())
	}
	bt, err := Run(predictor.BTFN{}, tr.Reader(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bt.Accuracy.Rate() != 0.9 { // backward branch -> predict taken
		t.Fatalf("BTFN on backward loop: %v", bt.Accuracy.Rate())
	}
}

func BenchmarkSimPAg(b *testing.B) {
	tr := alternatingTrace(0x100, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(pagA2(12), tr.Reader(), Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
