package sim

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"twolevel/internal/predictor"
	"twolevel/internal/telemetry"
	"twolevel/internal/trace"
)

// syntheticTrace builds a deterministic branchy event stream: a few
// hundred static sites with biased, history-dependent behaviour plus
// occasional traps and non-conditional branches.
func syntheticTrace(n int, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{}
	hist := map[uint32]uint32{}
	for i := 0; i < n; i++ {
		if rng.Intn(200) == 0 {
			tr.Append(trace.Event{Instrs: uint32(1 + rng.Intn(20)), Trap: true})
			continue
		}
		pc := uint32(0x1000 + 4*rng.Intn(300))
		class := trace.Cond
		switch rng.Intn(10) {
		case 7:
			class = trace.Uncond
		case 8:
			class = trace.Call
		case 9:
			class = trace.Return
		}
		h := hist[pc]
		taken := (h&3 == 0) || rng.Intn(5) == 0
		hist[pc] = h<<1 | b2u(taken)
		tr.Append(trace.Event{
			Instrs: uint32(1 + rng.Intn(30)),
			Branch: trace.Branch{PC: pc, Target: pc + uint32(rng.Intn(64)*4) - 96, Class: class, Taken: taken},
		})
	}
	return tr
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func mkTwoLevel(t *testing.T, variation predictor.Variation, bits int) predictor.Predictor {
	t.Helper()
	p, err := predictor.NewTwoLevel(predictor.TwoLevelConfig{
		Variation: variation, HistoryBits: bits, Automaton: 1, Entries: 64, Assoc: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRunManyMatchesSerialRuns is the core equivalence property: a batch
// of predictors with heterogeneous options replayed down one pass must
// produce results bit-identical to serial Runs over fresh readers.
func TestRunManyMatchesSerialRuns(t *testing.T) {
	tr := syntheticTrace(30_000, 42)
	optsSet := []Options{
		{MaxCondBranches: 5000},
		{MaxCondBranches: 5000, ContextSwitches: true, CSInterval: 10_000},
		{MaxCondBranches: 2000}, // smaller budget: stops early in the shared pass
		{MaxCondBranches: 5000, PipelineDepth: 4},
		{MaxCondBranches: 3000, PipelineDepth: 8, ContextSwitches: true, CSInterval: 7000},
		{}, // no budget: drains the stream
	}
	build := func() []predictor.Predictor {
		return []predictor.Predictor{
			mkTwoLevel(t, predictor.GAg, 8),
			mkTwoLevel(t, predictor.PAg, 6),
			mkTwoLevel(t, predictor.PAp, 4),
			mkTwoLevel(t, predictor.GAg, 10),
			mkTwoLevel(t, predictor.PAg, 8),
			mkTwoLevel(t, predictor.GAg, 6),
		}
	}

	serialPreds := build()
	want := make([]Result, len(optsSet))
	for i, o := range optsSet {
		var err error
		want[i], err = Run(serialPreds[i], tr.Reader(), o)
		if err != nil {
			t.Fatal(err)
		}
	}

	batchPreds := build()
	got, err := RunMany(batchPreds, tr.Reader(), optsSet)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("predictor %d: batched result differs:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestRunManyObserversMatchSerial checks the observer path: per-run
// telemetry collected during a batched pass equals the serial run's.
func TestRunManyObserversMatchSerial(t *testing.T) {
	tr := syntheticTrace(20_000, 7)
	o := Options{MaxCondBranches: 4000, ContextSwitches: true, CSInterval: 9000}

	serialHot := telemetry.NewHotBranches(5)
	serialOpts := o
	serialOpts.Observer = serialHot
	serialRes, err := Run(mkTwoLevel(t, predictor.PAg, 6), tr.Reader(), serialOpts)
	if err != nil {
		t.Fatal(err)
	}

	batchHot := telemetry.NewHotBranches(5)
	batchOpts := o
	batchOpts.Observer = batchHot
	plain := o
	res, err := RunMany(
		[]predictor.Predictor{mkTwoLevel(t, predictor.PAg, 6), mkTwoLevel(t, predictor.GAg, 8)},
		tr.Reader(),
		[]Options{batchOpts, plain},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res[0], serialRes) {
		t.Fatalf("instrumented batched run differs from serial:\n got %+v\nwant %+v", res[0], serialRes)
	}
	if !reflect.DeepEqual(batchHot.Report(), serialHot.Report()) {
		t.Fatalf("hot-branch telemetry differs:\n got %+v\nwant %+v", batchHot.Report(), serialHot.Report())
	}
}

type errSource struct {
	src  trace.Source
	n    int
	seen int
}

func (s *errSource) Next() (trace.Event, error) {
	if s.seen >= s.n {
		return trace.Event{}, errors.New("source broke")
	}
	s.seen++
	return s.src.Next()
}

func TestRunManyPropagatesSourceError(t *testing.T) {
	tr := syntheticTrace(5000, 9)
	preds := []predictor.Predictor{mkTwoLevel(t, predictor.PAg, 6), mkTwoLevel(t, predictor.GAg, 8)}
	res, err := RunMany(preds, &errSource{src: tr.Reader(), n: 100}, []Options{{}, {}})
	if err == nil {
		t.Fatal("source error swallowed")
	}
	if len(res) != 2 || res[0].Instructions == 0 {
		t.Fatalf("partial results missing: %+v", res)
	}
}

func TestRunManyOptionCountMismatch(t *testing.T) {
	if _, err := RunMany([]predictor.Predictor{mkTwoLevel(t, predictor.PAg, 6)}, syntheticTrace(10, 1).Reader(), nil); err == nil {
		t.Fatal("mismatched option count accepted")
	}
}
