package sim

import (
	"reflect"
	"testing"

	"twolevel/internal/automaton"
	"twolevel/internal/predictor"
	"twolevel/internal/sim/fastpath"
	"twolevel/internal/span"
	"twolevel/internal/spec"
	"twolevel/internal/trace"
)

// kernelSnapshot synthesises a packed trace with the hostile shapes the
// flat kernel must reproduce bit for bit: several hundred static branch
// sites (forcing BHT set conflicts and slot recycling), mixed branch
// classes, traps, a blend of biased and alternating outcomes, and both
// forward and backward targets (so BTFN predicts both ways).
func kernelSnapshot(events int) trace.Snapshot {
	var p trace.Packed
	rng := uint32(0x2545F491)
	next := func() uint32 {
		rng ^= rng << 13
		rng ^= rng >> 17
		rng ^= rng << 5
		return rng
	}
	for i := 0; i < events; i++ {
		r := next()
		if r%101 == 0 {
			p.Append(trace.Event{Instrs: 1 + r%7, Trap: true})
			continue
		}
		cls := trace.Cond
		switch r % 11 {
		case 7:
			cls = trace.Uncond
		case 8:
			cls = trace.Call
		case 9:
			cls = trace.Return
		case 10:
			cls = trace.Indirect
		}
		site := r >> 8 % 709 // prime site count → uneven set pressure
		pc := 0x40_0000 + 4*site
		var target uint32
		if r>>3%3 == 0 {
			target = pc - 4 - 4*(r>>16%50) // backward (BTFN: predict taken)
		} else {
			target = pc + 4 + 4*(r>>16%50)
		}
		var taken bool
		switch site % 3 {
		case 0:
			taken = r>>5&3 != 0 // biased taken
		case 1:
			taken = i%2 == 0 // alternating
		default:
			taken = r>>6&1 == 0 // coin flip
		}
		p.Append(trace.Event{Instrs: 1 + r%9, Branch: trace.Branch{
			PC:     pc,
			Target: target,
			Class:  cls,
			Taken:  taken,
		}})
	}
	return p.View(p.Len())
}

// kernelEquivSpecs span every flattenable family: the paper's three
// primary variations under several automata and table shapes, the ideal
// BHT, the six taxonomy extensions, static training, and the static
// predictors.
var kernelEquivSpecs = []string{
	"GAg(HR(1,,8-sr),1xPHT(2^8,A2))",
	"GAg(HR(1,,12-sr),1xPHT(2^12,A3))",
	"GAg(HR(1,,4-sr),1xPHT(2^4,LT))",
	"PAg(BHT(512,4,10-sr),1xPHT(2^10,A2))",
	"PAg(BHT(64,1,6-sr),1xPHT(2^6,A1))",
	"PAg(IBHT(inf,,10-sr),1xPHT(2^10,A2))",
	"PAp(BHT(512,4,6-sr),512xPHT(2^6,A2))",
	"PAp(BHT(128,2,4-sr),128xPHT(2^4,A4))",
	"GAs(HR(1,,8-sr),16xPHT(2^8,A2))",
	"GAp(HR(1,,6-sr),512xPHT(2^6,A2))",
	"SAg(SHT(64,,8-sr),1xPHT(2^8,A2))",
	"SAs(SHT(64,,8-sr),16xPHT(2^8,A2))",
	"SAp(SHT(64,,6-sr),512xPHT(2^6,A2))",
	"PAs(BHT(512,4,8-sr),16xPHT(2^8,A2))",
	"GSg(HR(1,,8-sr),1xPHT(2^8,PB))",
	"PSg(BHT(512,4,8-sr),1xPHT(2^8,PB))",
	"AlwaysTaken",
	"BTFN",
}

// buildKernelSpec constructs sp's predictor, running a training pass
// over snap for the static-training schemes.
func buildKernelSpec(t *testing.T, sp spec.Spec, snap trace.Snapshot) predictor.Predictor {
	t.Helper()
	var td *spec.TrainingData
	if sp.NeedsTraining() {
		trainer, err := spec.NewTrainer(sp)
		if err != nil {
			t.Fatal(err)
		}
		if err := trainer.ObserveTrace(snap.Reader()); err != nil {
			t.Fatal(err)
		}
		td = &spec.TrainingData{Static: trainer}
	}
	p, err := spec.Build(sp, td)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// replaySpanAttr runs p over a fresh reader of snap under a tracer and
// returns the result alongside the replay span's fastpath attribute.
func replaySpanAttr(t *testing.T, p predictor.Predictor, snap trace.Snapshot, opts Options) (Result, string) {
	t.Helper()
	tracer := span.New()
	root := tracer.Root("test")
	opts.Span = root
	res, err := Run(p, snap.Reader(), opts)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	for _, rec := range tracer.Snapshot() {
		if rec.Name != "replay" {
			continue
		}
		for _, a := range rec.Attrs {
			if a.Key == "fastpath" {
				return res, a.Value
			}
		}
	}
	t.Fatal("no replay span with a fastpath attribute recorded")
	return res, ""
}

// TestKernelMatchesInterpretive is the headline bit-identity property:
// for every flattenable spec, under plain, context-switch, budgeted and
// sharded options, the fast kernel's Result deep-equals the interpretive
// runner's, the two paths leave the reader at the same position, and the
// replay span proves the kernel actually served the fast leg.
func TestKernelMatchesInterpretive(t *testing.T) {
	snap := kernelSnapshot(24_000)
	conds := uint64(0)
	for i := 0; i < snap.Len(); i++ {
		e := snap.At(i)
		if !e.Trap && e.Branch.Class == trace.Cond {
			conds++
		}
	}
	optionSets := []struct {
		name string
		opts Options
	}{
		{"plain", Options{}},
		{"cs", Options{ContextSwitches: true, CSInterval: 1009}},
		{"budget", Options{MaxCondBranches: conds / 3}},
		{"cs-budget", Options{ContextSwitches: true, CSInterval: 1500, MaxCondBranches: conds / 2}},
		{"sharded", Options{Shards: 4}},
		{"cs-sharded", Options{ContextSwitches: true, CSInterval: 1009, Shards: 4}},
	}
	for _, s := range kernelEquivSpecs {
		sp := spec.MustParse(s)
		for _, os := range optionSets {
			slowOpts := os.opts
			slowOpts.DisableFastpath = true
			slowSrc := snap.Reader()
			want, err := Run(buildKernelSpec(t, sp, snap), slowSrc, slowOpts)
			if err != nil {
				t.Fatalf("%s/%s interpretive: %v", s, os.name, err)
			}

			fastSrc := snap.Reader()
			p := buildKernelSpec(t, sp, snap)
			if !FastpathEligible(p, fastSrc, os.opts) {
				t.Fatalf("%s/%s: expected fast-path eligibility", s, os.name)
			}
			got, attr := replaySpanAttr(t, p, snap, os.opts)
			if attr != "true" {
				t.Fatalf("%s/%s: replay span fastpath=%q, kernel did not engage", s, os.name, attr)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: kernel result differs from interpretive runner:\n got %+v\nwant %+v",
					s, os.name, got, want)
			}
		}
	}
}

// TestKernelWritebackResumes proves the kernel's state writeback is
// complete: a budgeted kernel run followed by an interpretive
// continuation over the same reader must land exactly where two
// interpretive runs do. Any predictor state the kernel failed to restore
// (histories, pattern tables, BHT residency, cached predictions or
// targets) would diverge in the second leg.
func TestKernelWritebackResumes(t *testing.T) {
	snap := kernelSnapshot(24_000)
	first := Options{MaxCondBranches: 4000, ContextSwitches: true, CSInterval: 1711}
	for _, s := range kernelEquivSpecs {
		sp := spec.MustParse(s)

		slowSrc := snap.Reader()
		slowP := buildKernelSpec(t, sp, snap)
		slowOpts := first
		slowOpts.DisableFastpath = true
		if _, err := Run(slowP, slowSrc, slowOpts); err != nil {
			t.Fatalf("%s interpretive leg 1: %v", s, err)
		}
		slowPos := slowSrc.Pos()
		want, err := Run(slowP, slowSrc, Options{DisableFastpath: true})
		if err != nil {
			t.Fatalf("%s interpretive leg 2: %v", s, err)
		}

		fastSrc := snap.Reader()
		fastP := buildKernelSpec(t, sp, snap)
		if _, err := Run(fastP, fastSrc, first); err != nil {
			t.Fatalf("%s kernel leg 1: %v", s, err)
		}
		if fastPos := fastSrc.Pos(); slowPos != fastPos {
			t.Errorf("%s: kernel consumed %d events, interpretive %d", s, fastPos, slowPos)
		}
		got, err := Run(fastP, fastSrc, Options{DisableFastpath: true})
		if err != nil {
			t.Fatalf("%s continuation: %v", s, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: interpretive continuation after kernel leg differs:\n got %+v\nwant %+v",
				s, got, want)
		}
	}
}

// TestKernelShardedMatchesSerial pins the PC-partition merge: for the
// shardable schemes every shard count yields the serial kernel's exact
// Result.
func TestKernelShardedMatchesSerial(t *testing.T) {
	snap := kernelSnapshot(24_000)
	shardable := []string{
		"PAp(BHT(512,4,6-sr),512xPHT(2^6,A2))",
		"PAs(BHT(512,4,8-sr),16xPHT(2^8,A2))",
		"SAs(SHT(64,,8-sr),16xPHT(2^8,A2))",
		"SAp(SHT(64,,6-sr),512xPHT(2^6,A2))",
	}
	for _, s := range shardable {
		sp := spec.MustParse(s)
		serial, err := Run(buildKernelSpec(t, sp, snap), snap.Reader(),
			Options{ContextSwitches: true, CSInterval: 1009})
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{2, 4, 8, 16} {
			got, err := Run(buildKernelSpec(t, sp, snap), snap.Reader(),
				Options{ContextSwitches: true, CSInterval: 1009, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, serial) {
				t.Errorf("%s shards=%d: sharded result differs from serial:\n got %+v\nwant %+v",
					s, shards, got, serial)
			}
		}
	}
}

// TestKernelRunManyMatchesSerial drives a mixed batch — kernel cells,
// interpretive cells and a pipelined cell — through RunMany and checks
// every cell against its serial Run, plus the final reader position.
func TestKernelRunManyMatchesSerial(t *testing.T) {
	snap := kernelSnapshot(24_000)
	specs := []string{
		"GAg(HR(1,,8-sr),1xPHT(2^8,A2))",
		"PAg(BHT(512,4,10-sr),1xPHT(2^10,A2))",
		"PAp(BHT(512,4,6-sr),512xPHT(2^6,A2))",
		"SAs(SHT(64,,8-sr),16xPHT(2^8,A2))",
		"BTFN",
	}
	baseOpts := []Options{
		{},
		{ContextSwitches: true, CSInterval: 1009},
		{MaxCondBranches: 3000},
		{Shards: 4},
		{DisableFastpath: true}, // forced interpretive cell in the batch
	}
	var preds []predictor.Predictor
	var opts []Options
	var want []Result
	for i, s := range specs {
		sp := spec.MustParse(s)
		p := buildKernelSpec(t, sp, snap)
		serial, err := Run(buildKernelSpec(t, sp, snap), snap.Reader(), baseOpts[i])
		if err != nil {
			t.Fatal(err)
		}
		preds = append(preds, p)
		opts = append(opts, baseOpts[i])
		want = append(want, serial)
	}
	// One pipelined interpretive cell rides along to cover the legacy
	// pass inside the mixed batch.
	pipeP := buildKernelSpec(t, spec.MustParse("PAg(BHT(512,4,10-sr),1xPHT(2^10,A2))"), snap)
	pipeOpts := Options{PipelineDepth: 4}
	pipeWant, err := Run(buildKernelSpec(t, spec.MustParse("PAg(BHT(512,4,10-sr),1xPHT(2^10,A2))"), snap),
		snap.Reader(), pipeOpts)
	if err != nil {
		t.Fatal(err)
	}
	preds = append(preds, pipeP)
	opts = append(opts, pipeOpts)
	want = append(want, pipeWant)

	src := snap.Reader()
	got, err := RunMany(preds, src, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("cell %d: RunMany result differs from serial Run:\n got %+v\nwant %+v",
				i, got[i], want[i])
		}
	}
	if src.Pos() != snap.Len() {
		t.Errorf("RunMany left reader at %d, want %d (unbudgeted cells drain the snapshot)",
			src.Pos(), snap.Len())
	}
}

// TestFastpathEligibility is the dispatch table: which (predictor,
// source, options) combinations select the kernel.
func TestFastpathEligibility(t *testing.T) {
	snap := kernelSnapshot(256)
	twoLevel := func(cfg predictor.TwoLevelConfig) predictor.Predictor {
		p, err := predictor.NewTwoLevel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	pag := predictor.TwoLevelConfig{
		Variation: predictor.PAg, HistoryBits: 8, Automaton: automaton.A2,
		Entries: 64, Assoc: 4,
	}
	specPAg := pag
	specPAg.SpeculativeHistory = true
	btb, err := predictor.NewBTB(predictor.BTBConfig{Entries: 64, Assoc: 4, Automaton: automaton.A2})
	if err != nil {
		t.Fatal(err)
	}
	packed := snap.Reader()
	live := (&trace.Trace{}).Reader()
	cases := []struct {
		name string
		p    predictor.Predictor
		src  trace.Source
		opts Options
		want bool
	}{
		{"two-level over packed source", twoLevel(pag), packed, Options{}, true},
		{"always-taken static", predictor.AlwaysTaken{}, packed, Options{}, true},
		{"btfn static", predictor.BTFN{}, packed, Options{}, true},
		{"context-switch mode stays eligible", twoLevel(pag), packed, Options{ContextSwitches: true}, true},
		{"unpacked trace source", twoLevel(pag), live, Options{}, false},
		{"explicit opt-out", twoLevel(pag), packed, Options{DisableFastpath: true}, false},
		{"observer attached", twoLevel(pag), packed, Options{Observer: &countingObserver{}}, false},
		{"pipelined timing model", twoLevel(pag), packed, Options{PipelineDepth: 4}, false},
		{"speculative history", twoLevel(specPAg), packed, Options{}, false},
		{"btb design", btb, packed, Options{}, false},
	}
	for _, c := range cases {
		if got := FastpathEligible(c.p, c.src, c.opts); got != c.want {
			t.Errorf("%s: FastpathEligible = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestReplaySpanFastpathAttr pins the telemetry contract: the replay
// span carries fastpath=true exactly when the kernel served the run.
func TestReplaySpanFastpathAttr(t *testing.T) {
	snap := kernelSnapshot(2048)
	sp := spec.MustParse("PAg(BHT(512,4,10-sr),1xPHT(2^10,A2))")
	if _, attr := replaySpanAttr(t, buildKernelSpec(t, sp, snap), snap, Options{}); attr != "true" {
		t.Errorf("kernel-served run: replay span fastpath=%q, want true", attr)
	}
	if _, attr := replaySpanAttr(t, buildKernelSpec(t, sp, snap), snap, Options{DisableFastpath: true}); attr != "false" {
		t.Errorf("interpretive run: replay span fastpath=%q, want false", attr)
	}
}

// TestKernelSupportedCoverage guards against silent fallbacks: every
// equivalence spec must flatten (fastpath.New accepts it), or the
// bit-identity suite would be testing the interpretive runner against
// itself.
func TestKernelSupportedCoverage(t *testing.T) {
	snap := kernelSnapshot(256)
	for _, s := range kernelEquivSpecs {
		sp := spec.MustParse(s)
		p := buildKernelSpec(t, sp, snap)
		if !fastpath.Supported(p) {
			t.Errorf("%s: fastpath.Supported = false", s)
			continue
		}
		if _, ok := fastpath.New(p, fastpathConfig(Options{})); !ok {
			t.Errorf("%s: fastpath.New declined", s)
		}
	}
}

// TestPipelinedQueueAllocationFree locks in the in-flight ring buffer:
// a pipelined run performs one queue allocation up front and none in
// steady state (the old reslice-on-resolve walked the backing array off
// its end, reallocating every depth+1 branches).
func TestPipelinedQueueAllocationFree(t *testing.T) {
	tr := observerTrace(8192)
	p := observerTestPredictor(t)
	rd := tr.Reader()
	opts := Options{PipelineDepth: 8}
	if _, err := Run(p, rd, opts); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		rd.Reset()
		if _, err := Run(p, rd, opts); err != nil {
			t.Fatal(err)
		}
	})
	// One allocation per run: the runner's fixed-capacity ring.
	if allocs > 1 {
		t.Errorf("pipelined replay allocated %.0f times per run, want at most 1", allocs)
	}
}

// BenchmarkPipelinedReplay measures the pipelined-mode hot loop; with
// the ring buffer the reported allocs/op stay at the single up-front
// queue allocation regardless of trace length.
func BenchmarkPipelinedReplay(b *testing.B) {
	tr := observerTrace(65_536)
	p, err := predictor.NewTwoLevel(predictor.TwoLevelConfig{
		Variation: predictor.PAg, HistoryBits: 8, Automaton: automaton.A2,
		Entries: 64, Assoc: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	rd := tr.Reader()
	opts := Options{PipelineDepth: 8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset()
		if _, err := Run(p, rd, opts); err != nil {
			b.Fatal(err)
		}
	}
}
