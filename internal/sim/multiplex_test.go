package sim

import (
	"io"
	"testing"

	"twolevel/internal/trace"
)

// constSource yields an endless stream of one conditional branch.
type constSource struct {
	pc     uint32
	taken  bool
	instrs uint32
}

func (c *constSource) Next() (trace.Event, error) {
	return trace.Event{
		Instrs: c.instrs,
		Branch: trace.Branch{PC: c.pc, Target: c.pc - 16, Class: trace.Cond, Taken: c.taken},
	}, nil
}

func TestMultiplexValidation(t *testing.T) {
	if _, err := NewMultiplex([]trace.Source{&constSource{}}, 100); err == nil {
		t.Fatal("single source accepted")
	}
}

func TestMultiplexAlternatesAndTags(t *testing.T) {
	a := &constSource{pc: 0x1000, taken: true, instrs: 10}
	b := &constSource{pc: 0x1000, taken: false, instrs: 10}
	m, err := NewMultiplex([]trace.Source{a, b}, 50)
	if err != nil {
		t.Fatal(err)
	}
	var pcs = map[uint32]int{}
	var traps int
	for i := 0; i < 200; i++ {
		e, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if e.Trap {
			traps++
			continue
		}
		pcs[e.Branch.PC]++
	}
	if len(pcs) != 2 {
		t.Fatalf("expected two distinct tagged addresses, got %v", pcs)
	}
	// Process 1's addresses are relocated out of process 0's space.
	if _, ok := pcs[0x1000]; !ok {
		t.Fatal("process 0 address missing")
	}
	if _, ok := pcs[0x1000^1<<28]; !ok {
		t.Fatal("process 1 address not tagged")
	}
	if traps == 0 || m.Switches == 0 {
		t.Fatal("no switch traps emitted")
	}
	// Quantum 50, 10 instructions per event: a switch every 5 events.
	if traps < 30 || traps > 45 {
		t.Fatalf("traps = %d, expected ~40 of 200", traps)
	}
}

func TestMultiplexHoldsBoundaryEvent(t *testing.T) {
	// Each event is 30 instructions, quantum 50: each process delivers
	// one full event and then holds the second for its next turn —
	// instruction accounting per process must be preserved exactly.
	a := &constSource{pc: 0x100, taken: true, instrs: 30}
	b := &constSource{pc: 0x200, taken: true, instrs: 30}
	m, err := NewMultiplex([]trace.Source{a, b}, 50)
	if err != nil {
		t.Fatal(err)
	}
	perProcess := map[uint32]uint64{}
	for i := 0; i < 100; i++ {
		e, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !e.Trap {
			perProcess[e.Branch.PC>>28] += uint64(e.Instrs)
		}
	}
	if len(perProcess) != 2 {
		t.Fatalf("processes seen: %v", perProcess)
	}
	diff := int64(perProcess[0]) - int64(perProcess[1])
	if diff < 0 {
		diff = -diff
	}
	if diff > 60 {
		t.Fatalf("round robin unfair: %v", perProcess)
	}
}

func TestMultiplexEOFPropagates(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(trace.Event{Instrs: 1, Branch: trace.Branch{PC: 4, Class: trace.Cond}})
	m, err := NewMultiplex([]trace.Source{tr.Reader(), &constSource{pc: 8, instrs: 1}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	sawEOF := false
	for i := 0; i < 300; i++ {
		if _, err := m.Next(); err == io.EOF {
			sawEOF = true
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !sawEOF {
		t.Fatal("EOF of one process did not end the stream")
	}
}

func TestMultiplexedRunPollutesPredictor(t *testing.T) {
	// Two copies of an alternating branch at the same (untagged)
	// address, interleaved with opposite phases: without tagging they
	// would destroy each other; tagging keeps them apart so a
	// per-address predictor still learns both. This validates that the
	// multiplexer models separate address spaces.
	a := &constSource{pc: 0x500, taken: true, instrs: 5}
	b := &constSource{pc: 0x500, taken: false, instrs: 5}
	m, err := NewMultiplex([]trace.Source{a, b}, 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(pagA2(6), m, Options{MaxCondBranches: 4000})
	if err != nil {
		t.Fatal(err)
	}
	// Each process's branch is constant: near-perfect despite sharing
	// an untagged address.
	if res.Accuracy.Rate() < 0.99 {
		t.Fatalf("tagged multiplexing should isolate the processes: %.4f", res.Accuracy.Rate())
	}
}
