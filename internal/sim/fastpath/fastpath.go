// Package fastpath is the branchless fast-replay kernel: a specialized
// replay engine that drives flat-table predict+update loops directly over
// a packed trace snapshot's SoA columns, bypassing the per-event
// trace.Source / predictor.Predictor interface calls of the interpretive
// runner in package sim.
//
// The kernel runs only when a replay cell qualifies (see Supported and
// sim's dispatch): depth-0 base model, no Observer, a *trace.SnapshotReader
// source, and a predictor whose state flattens — the static AlwaysTaken
// and BTFN schemes, or a *predictor.TwoLevel of any taxonomy variation
// (GAg/PAg/PAp plus the GAp/GAs/PAs/SAg/SAs/SAp extensions, practical or
// ideal BHT, custom machines, Static Training presets) without
// speculative history. Everything else falls back to the interpretive
// runner.
//
// Mechanics: each automaton's δ/λ are flattened into a packed
// [state<<1|outcome] transition array and a λ bitmask; history registers
// become raw uint32 values (a spare bit carries the §4.2 first-outcome
// freshness flag); the branch history table becomes parallel flat arrays
// (valid/pc/stamp/history/prediction/target); and pattern tables are
// updated in place through their raw state slices. Per event the hot loop
// does a handful of array loads and stores — no interface calls, no Event
// struct materialisation.
//
// Fidelity: a kernel run is bit-identical to the interpretive runner —
// the same Result counters and the same final predictor state (the one
// deliberate exception: the BHT LRU clock advances once per branch
// instead of once per Lookup/Allocate touch; since every touch within a
// branch refreshes the same entry, the relative stamp order — all that
// replacement decisions consult — is preserved). The equivalence suite in
// package sim deep-equals both paths across the full spec grid.
package fastpath

import (
	"context"

	"twolevel/internal/automaton"
	"twolevel/internal/bht"
	"twolevel/internal/history"
	"twolevel/internal/pht"
	"twolevel/internal/predictor"
	"twolevel/internal/trace"
)

// Config carries the sim options the kernel honours. The dispatching
// caller guarantees the rest of the option surface is at its zero value
// (no observer, no pipeline).
type Config struct {
	// ContextSwitches enables trap/quantum context-switch injection.
	ContextSwitches bool
	// CSInterval is the instruction quantum (0 = sim's default is
	// resolved by the caller; the kernel requires a concrete value).
	CSInterval uint64
	// MaxCondBranches bounds the run (0 = drain the snapshot).
	MaxCondBranches uint64
	// Context, when non-nil, is polled every few thousand events.
	Context context.Context
	// Shards requests PC-partitioned parallel replay with a
	// deterministic counter merge (<= 1 means serial). Honoured only for
	// variations whose first and second levels are both non-global; the
	// kernel silently runs serial otherwise.
	Shards int
	// Interval, when > 0, accumulates an accuracy sample every Interval
	// resolved conditional branches — the kernel-native equivalent of
	// the telemetry.IntervalSeries observer, bit-identical by the
	// equivalence suite.
	Interval uint64
	// TopPCs, when > 0, accumulates a per-PC mispredict profile and
	// reports the TopPCs worst branches (telemetry.HotBranches order).
	TopPCs int
	// Warmup is the resolved-branch index bounding the warmup-miss
	// split of the per-PC profile (0 = attribute every miss to steady
	// state, matching Forensics with an unknown budget).
	Warmup uint64
}

// Counters mirrors sim.Result for the depth-0 base model (Repredictions
// is structurally zero on this path). Package sim converts.
type Counters struct {
	Predictions, Correct             uint64
	ByClass                          [trace.NumClasses]uint64
	Instructions                     uint64
	Traps                            uint64
	ContextSwitches                  uint64
	TakenCond                        uint64
	TargetPredictions, TargetCorrect uint64
}

// merge adds o into c (deterministic: plain field sums).
func (c *Counters) merge(o Counters) {
	c.Predictions += o.Predictions
	c.Correct += o.Correct
	for i := range c.ByClass {
		c.ByClass[i] += o.ByClass[i]
	}
	c.Instructions += o.Instructions
	c.Traps += o.Traps
	c.ContextSwitches += o.ContextSwitches
	c.TakenCond += o.TakenCond
	c.TargetPredictions += o.TargetPredictions
	c.TargetCorrect += o.TargetCorrect
}

// checkInterval matches sim's cancellation poll cadence.
const checkInterval = 4096

// freshBit flags a mirrored history register that still awaits its first
// real outcome (§4.2 smearing). history.MaxBits is 30, so bit 31 is free.
const freshBit = uint32(1) << 31

// Supported reports whether the kernel can replay p. The caller checks
// the option-side conditions (depth 0, nil observer, snapshot source);
// this is the predictor-side half of eligibility.
func Supported(p predictor.Predictor) bool {
	switch tp := p.(type) {
	case predictor.AlwaysTaken, predictor.BTFN:
		return true
	case *predictor.TwoLevel:
		return tp != nil && !tp.Config().SpeculativeHistory
	default:
		return false
	}
}

// kernelKind selects the hot loop.
type kernelKind uint8

const (
	kindAlwaysTaken kernelKind = iota
	kindBTFN
	kindTwoLevel
)

// Kernel is one flattened replay cell. Build one with New, drive it with
// Run (or RunSharded), then the final predictor state has already been
// written back. A Kernel is single-use.
type Kernel struct {
	kind kernelKind
	cfg  Config

	// Two-level structure (kindTwoLevel only).
	view         predictor.FlatView
	hAxis, pAxis predictor.Axis
	kbits        int
	histMask     uint32
	delta        []automaton.State // δ, indexed [state<<1 | outcome]
	predMask     uint64            // λ, one bit per state
	initState    automaton.State   // pattern-table entry init (honours PatternInit)
	freshHist    uint32            // entry-allocation history (honours ColdHistoryZero)
	resetHist    uint32            // context-switch / global reset history (always all-ones fresh)

	ghr uint32 // mirrored global history register

	histSetMask uint32 // per-set history register file index mask
	setHists    []uint32

	patSetMask uint32 // per-set pattern table index mask
	setStates  [][]automaton.State
	setTouched [][]uint64

	gStates  []automaton.State // global pattern table, in place
	gTouched []uint64

	// Branch history table mirror. For the practical Cache the arrays
	// are sized to capacity in physical slot order; for the Ideal table
	// they grow per tracked branch with idealIdx/idealPCs as the
	// directory (ever/pcs/stamps stay unused).
	store      bht.Store
	cache      *bht.Cache
	ideal      *bht.Ideal
	perAddrPHT bool
	assoc      int
	setMask    uint32
	clock      uint64
	valid      []bool
	ever       []bool
	pcs        []uint32
	stamps     []uint64
	hists      []uint32
	preds      []bool
	targets    []uint32
	phtTables  []*pht.Table
	phtStates  [][]automaton.State
	phtTouched [][]uint64
	idealIdx   map[uint32]int32
	idealPCs   []uint32

	lookups, misses uint64 // BHT counter deltas, written back after the run

	c       Counters
	sinceCS uint64

	tap *Tap // kernel-native telemetry accumulator; nil when off
}

// New builds a kernel over p, seeding the flat mirrors from the
// predictor's current state. ok is false when p is not Supported.
func New(p predictor.Predictor, cfg Config) (*Kernel, bool) {
	if cfg.CSInterval == 0 {
		cfg.CSInterval = 1 // caller resolves the default; never divide by zero
	}
	switch tp := p.(type) {
	case predictor.AlwaysTaken:
		return &Kernel{kind: kindAlwaysTaken, cfg: cfg, tap: newTap(cfg)}, true
	case predictor.BTFN:
		return &Kernel{kind: kindBTFN, cfg: cfg, tap: newTap(cfg)}, true
	case *predictor.TwoLevel:
		if tp == nil || tp.Config().SpeculativeHistory {
			return nil, false
		}
		k := &Kernel{kind: kindTwoLevel, cfg: cfg, view: tp.FlatView(), tap: newTap(cfg)}
		k.seed()
		return k, true
	default:
		return nil, false
	}
}

// encodeHist packs a history register into the kernel's mirror format.
func encodeHist(r *history.Register) uint32 {
	v := r.Pattern()
	if r.Fresh() {
		v |= freshBit
	}
	return v
}

// seed flattens the predictor's machine and mirrors its mutable state.
func (k *Kernel) seed() {
	v := k.view
	cfg := v.Config
	k.hAxis = cfg.Variation.HistoryAxis()
	k.pAxis = cfg.Variation.PatternAxis()
	k.kbits = cfg.HistoryBits
	k.histMask = uint32(1)<<cfg.HistoryBits - 1

	m := v.Machine
	states := m.States()
	k.delta = make([]automaton.State, states*2)
	for s := 0; s < states; s++ {
		k.delta[s<<1] = m.Next(automaton.State(s), false)
		k.delta[s<<1|1] = m.Next(automaton.State(s), true)
		if m.Predict(automaton.State(s)) {
			k.predMask |= 1 << s
		}
	}
	k.initState = m.Initial()
	if cfg.PatternInit != nil {
		k.initState = *cfg.PatternInit
	}
	k.resetHist = k.histMask | freshBit
	k.freshHist = k.resetHist
	if cfg.ColdHistoryZero {
		k.freshHist = 0
	}

	switch k.hAxis {
	case predictor.AxisGlobal:
		k.ghr = encodeHist(v.GHR)
	case predictor.AxisPerSet:
		k.histSetMask = uint32(len(v.SetHists) - 1)
		k.setHists = make([]uint32, len(v.SetHists))
		for i := range v.SetHists {
			k.setHists[i] = encodeHist(&v.SetHists[i])
		}
	}

	switch k.pAxis {
	case predictor.AxisGlobal:
		k.gStates = v.GPHT.RawStates()
		k.gTouched = v.GPHT.RawTouched()
	case predictor.AxisPerSet:
		k.patSetMask = uint32(len(v.SetPHTs) - 1)
		k.setStates = make([][]automaton.State, len(v.SetPHTs))
		k.setTouched = make([][]uint64, len(v.SetPHTs))
		for i, t := range v.SetPHTs {
			k.setStates[i] = t.RawStates()
			k.setTouched[i] = t.RawTouched()
		}
	default:
		k.perAddrPHT = true
	}

	k.store = v.Store
	switch st := v.Store.(type) {
	case *bht.Cache:
		k.cache = st
		n := st.Entries()
		k.assoc = st.Assoc()
		k.setMask = uint32(st.Sets() - 1)
		k.clock = st.Clock()
		k.valid = make([]bool, n)
		k.ever = make([]bool, n)
		k.pcs = make([]uint32, n)
		k.stamps = make([]uint64, n)
		k.hists = make([]uint32, n)
		k.preds = make([]bool, n)
		k.targets = make([]uint32, n)
		if k.perAddrPHT {
			k.phtTables = make([]*pht.Table, n)
			k.phtStates = make([][]automaton.State, n)
			k.phtTouched = make([][]uint64, n)
		}
		for i := 0; i < n; i++ {
			e := st.At(i)
			k.valid[i] = e.Valid()
			k.ever[i] = e.Ever()
			k.pcs[i] = e.PC()
			k.stamps[i] = e.Stamp()
			if !e.Ever() {
				continue
			}
			k.hists[i] = encodeHist(&e.Hist)
			k.preds[i] = e.Pred
			k.targets[i] = e.Target
			if k.perAddrPHT && e.PHT != nil {
				k.phtTables[i] = e.PHT
				k.phtStates[i] = e.PHT.RawStates()
				k.phtTouched[i] = e.PHT.RawTouched()
			}
		}
	case *bht.Ideal:
		k.ideal = st
		k.idealIdx = make(map[uint32]int32, st.Touched())
		st.Range(func(e *bht.Entry) {
			i := int32(len(k.idealPCs))
			k.idealIdx[e.PC()] = i
			k.idealPCs = append(k.idealPCs, e.PC())
			k.valid = append(k.valid, e.Valid())
			k.hists = append(k.hists, encodeHist(&e.Hist))
			k.preds = append(k.preds, e.Pred)
			k.targets = append(k.targets, e.Target)
			if k.perAddrPHT {
				if e.PHT != nil {
					k.phtTables = append(k.phtTables, e.PHT)
					k.phtStates = append(k.phtStates, e.PHT.RawStates())
					k.phtTouched = append(k.phtTouched, e.PHT.RawTouched())
				} else {
					k.phtTables = append(k.phtTables, nil)
					k.phtStates = append(k.phtStates, nil)
					k.phtTouched = append(k.phtTouched, nil)
				}
			}
		})
	}
}

// newSlotPHT materialises a per-slot pattern table exactly as the
// interpretive predictor would on first allocation.
func (k *Kernel) newSlotPHT() *pht.Table {
	return pht.NewInit(k.kbits, k.view.Machine, k.initState)
}

// writeback restores the predictor's state from the kernel mirrors.
// Pattern tables were updated in place and need nothing; history
// registers, BHT bookkeeping and payloads, and the BHT hit counters are
// written back here.
func (k *Kernel) writeback() {
	if k.kind != kindTwoLevel {
		return
	}
	v := k.view
	switch k.hAxis {
	case predictor.AxisGlobal:
		v.GHR.Restore(k.ghr&k.histMask, k.ghr&freshBit != 0)
	case predictor.AxisPerSet:
		for i := range v.SetHists {
			h := k.setHists[i]
			v.SetHists[i].Restore(h&k.histMask, h&freshBit != 0)
		}
	}
	switch {
	case k.cache != nil:
		for i := range k.valid {
			k.cache.SetSlot(i, k.valid[i], k.ever[i], k.pcs[i], k.stamps[i])
			if !k.ever[i] {
				continue
			}
			e := k.cache.At(i)
			r := history.New(k.kbits)
			r.Restore(k.hists[i]&k.histMask, k.hists[i]&freshBit != 0)
			e.Hist = r
			e.Pred = k.preds[i]
			e.Target = k.targets[i]
			if k.perAddrPHT && k.phtTables[i] != nil {
				e.PHT = k.phtTables[i]
			}
		}
		k.cache.SetClock(k.clock)
	case k.ideal != nil:
		for j, pc := range k.idealPCs {
			e := k.ideal.Slot(pc)
			e.SetValid(k.valid[j])
			r := history.New(k.kbits)
			r.Restore(k.hists[j]&k.histMask, k.hists[j]&freshBit != 0)
			e.Hist = r
			e.Pred = k.preds[j]
			e.Target = k.targets[j]
			if k.perAddrPHT && e.PHT == nil {
				e.PHT = k.phtTables[j]
			}
		}
	}
	*v.BHTLookups += k.lookups
	*v.BHTMisses += k.misses
}

// stopIndex returns the exclusive end index of the replay: the index
// just past the max-th conditional branch after start (the interpretive
// runner's budget semantics — it stops before consuming the event after
// the one that met the budget), or len(meta) when the budget is 0 or the
// snapshot ends first.
func stopIndex(meta []uint8, start int, max uint64) int {
	if max == 0 {
		return len(meta)
	}
	var seen uint64
	for i := start; i < len(meta); i++ {
		m := meta[i]
		if m&trace.MetaTrap == 0 && trace.Class(m>>trace.MetaClassShift) == trace.Cond {
			if seen++; seen == max {
				return i + 1
			}
		}
	}
	return len(meta)
}

// Run replays snap from event index start, honouring the kernel's
// budget, context-switch and cancellation configuration, writes the
// final predictor state back, and returns the counters plus the number
// of events consumed. On cancellation the partial counters and consumed
// count collected so far are returned with ctx's error; the predictor
// state is still written back so the caller sees a consistent prefix.
func (k *Kernel) Run(snap trace.Snapshot, start int) (Counters, int, error) {
	instrs, pcs, targets, meta := snap.Columns()
	end := stopIndex(meta, start, k.cfg.MaxCondBranches)
	var consumed int
	var err error
	switch {
	case k.kind == kindAlwaysTaken || k.kind == kindBTFN:
		consumed, err = k.runStatic(instrs, pcs, targets, meta, start, end)
	case k.shardable() && k.shardCount() > 1:
		consumed, err = k.runSharded(instrs, pcs, targets, meta, start, end)
	case k.hAxis == predictor.AxisGlobal && k.pAxis == predictor.AxisGlobal:
		consumed, err = k.runGAg(instrs, pcs, meta, start, end)
	case k.cache != nil && k.hAxis == predictor.AxisPerAddress && k.pAxis == predictor.AxisGlobal:
		consumed, err = k.runPAgCache(instrs, pcs, targets, meta, start, end)
	case k.cache != nil && k.hAxis == predictor.AxisPerAddress && k.pAxis == predictor.AxisPerAddress:
		consumed, err = k.runPApCache(instrs, pcs, targets, meta, start, end)
	default:
		consumed, err = k.runGeneric(instrs, pcs, targets, meta, start, end)
	}
	k.writeback()
	return k.c, consumed, err
}
