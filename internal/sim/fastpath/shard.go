package fastpath

// PC-partitioned parallel replay. For variations whose first AND second
// levels are both non-global (PAp, PAs, SAs, SAp on the practical BHT),
// every mutable structure is indexed by pc>>2 modulo a power-of-two set
// count, so partitioning branches by the low bits of pc>>2 gives each
// worker a disjoint slice of BHT sets, history registers and pattern
// tables: workers share the mirror arrays but write disjoint indices.
// Every worker walks the whole event stream (the context-switch quantum
// is timed by the global instruction count), predicting only its own
// partition; worker 0 additionally owns the global counters
// (instructions, traps, classes, context switches). Counter merging is
// plain field addition — deterministic regardless of scheduling — and
// the merged Counters equal the serial kernel's bit for bit.

import (
	"sync"

	"twolevel/internal/automaton"
	"twolevel/internal/predictor"
	"twolevel/internal/trace"
)

// shardable reports whether PC partitioning preserves semantics: both
// levels non-global (no cross-partition state) and no Ideal table (whose
// directory map cannot be shared without synchronisation).
func (k *Kernel) shardable() bool {
	return k.kind == kindTwoLevel &&
		k.hAxis != predictor.AxisGlobal && k.pAxis != predictor.AxisGlobal &&
		k.ideal == nil
}

// shardCount resolves the partition count: the largest power of two not
// exceeding the requested shards or any per-PC structure's set count
// (so branches sharing a set always share a partition).
func (k *Kernel) shardCount() int {
	n := k.cfg.Shards
	if n < 2 {
		return 1
	}
	lim := func(v int) {
		if v < n {
			n = v
		}
	}
	if k.cache != nil {
		lim(int(k.setMask) + 1)
	}
	if k.hAxis == predictor.AxisPerSet {
		lim(int(k.histSetMask) + 1)
	}
	if k.pAxis == predictor.AxisPerSet {
		lim(int(k.patSetMask) + 1)
	}
	g := 1
	for g*2 <= n {
		g *= 2
	}
	return g
}

// shardWorker is one partition's private replay state. The mirror arrays
// are shared with the Kernel (disjoint index sets); everything that must
// not be shared — the LRU clock, the counters, the context-switch
// phase — lives here.
type shardWorker struct {
	c               Counters
	clock           uint64
	lookups, misses uint64
	sinceCS         uint64
	tap             *Tap // private telemetry fork; nil when telemetry is off
	// stop is the event index the worker halted at: end after a full
	// pass, the aligned poll index where cancellation was observed
	// otherwise. Polls fire at identical indices in every worker (the
	// poll counter starts at zero at start for all of them), so stop
	// values from a cancelled pass lie on a common lattice and the
	// catch-up phase can align every worker to the furthest one.
	stop int
	err  error
}

// runSharded replays [start, end) with shardCount workers and merges.
// A cancelled pass still yields a well-defined prefix: workers observe
// cancellation at aligned poll indices, and the catch-up phase below
// advances every worker to the furthest stop, so the consumed count and
// the written-back state describe the exact prefix [start, stop) — an
// interpretive continuation from there is bit-identical to a run that
// was never sharded.
func (k *Kernel) runSharded(instrs, pcs, targets []uint32, meta []uint8, start, end int) (int, error) {
	g := k.shardCount()
	workers := make([]shardWorker, g)
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		if k.tap != nil {
			workers[w].tap = k.tap.fork(w)
		}
		wg.Add(1)
		go func(w int) { //lint:allow hotalloc per-worker spawn: O(shards) setup, not per-event work
			defer wg.Done()
			workers[w].clock = k.clock
			k.runShard(&workers[w], uint32(w), uint32(g-1), instrs, pcs, targets, meta, start, end, k.sinceCS, true)
		}(w)
	}
	wg.Wait()
	var err error
	stop := start
	for w := range workers {
		if workers[w].stop > stop {
			stop = workers[w].stop
		}
		if err == nil && workers[w].err != nil {
			err = workers[w].err
		}
	}
	if err != nil {
		// Catch-up: workers behind the furthest poll index replay their
		// own partition (disjoint state, no polling) up to it. At most
		// one poll window of events per worker, run serially.
		for w := range workers {
			if workers[w].stop < stop {
				k.runShard(&workers[w], uint32(w), uint32(g-1), instrs, pcs, targets, meta, workers[w].stop, stop, workers[w].sinceCS, false)
			}
		}
	}
	maxClock := k.clock
	for w := range workers {
		k.c.merge(workers[w].c)
		k.lookups += workers[w].lookups
		k.misses += workers[w].misses
		if workers[w].clock > maxClock {
			maxClock = workers[w].clock
		}
		if k.tap != nil {
			k.tap.absorb(workers[w].tap)
		}
	}
	k.clock = maxClock
	k.sinceCS = workers[0].sinceCS
	return stop - start, err
}

// runShard is the per-worker loop: the generic flat branch step applied
// only to branches whose pc>>2 low bits select partition w, with global
// accounting (instructions, traps, classes, context-switch count) owned
// by worker 0. startSinceCS seeds the context-switch phase (the pass
// start's value, or the worker's own on a catch-up resume); poll=false
// disables cancellation polling for the bounded catch-up leg. As in
// loops.go, a tap-free twin keeps the telemetry-off path free of
// per-event tap branches.
func (k *Kernel) runShard(sw *shardWorker, w, partMask uint32, instrs, pcs, targets []uint32, meta []uint8, start, end int, startSinceCS uint64, poll bool) {
	if sw.tap == nil {
		k.runShardPlain(sw, w, partMask, instrs, pcs, targets, meta, start, end, startSinceCS, poll)
		return
	}
	k.runShardTap(sw, w, partMask, instrs, pcs, targets, meta, start, end, startSinceCS, poll)
}

func (k *Kernel) runShardPlain(sw *shardWorker, w, partMask uint32, instrs, pcs, targets []uint32, meta []uint8, start, end int, startSinceCS uint64, poll bool) {
	cs, interval := k.cfg.ContextSwitches, k.cfg.CSInterval
	ctx := k.cfg.Context
	if !poll {
		ctx = nil
	}
	c := &sw.c
	global := w == 0
	histMask := k.histMask
	delta, predMask := k.delta, k.predMask
	useCache := k.cache != nil
	g := partMask + 1
	sinceCS := startSinceCS // all workers see the same instruction stream
	var sinceCheck uint32
	for i := start; i < end; i++ {
		if ctx != nil {
			if sinceCheck++; sinceCheck >= checkInterval {
				sinceCheck = 0
				if err := ctx.Err(); err != nil {
					sw.err = err
					sw.stop = i
					sw.sinceCS = sinceCS
					return
				}
			}
		}
		m := meta[i]
		ins := uint64(instrs[i])
		sinceCS += ins
		if global {
			c.Instructions += ins
		}
		if m&trace.MetaTrap != 0 {
			if global {
				c.Traps++
			}
			if cs {
				k.flushShard(w, g)
				if global {
					c.ContextSwitches++
				}
				sinceCS = 0
			}
			continue
		}
		if cs && sinceCS >= interval {
			k.flushShard(w, g)
			if global {
				c.ContextSwitches++
			}
			sinceCS = 0
		}
		cls := m >> trace.MetaClassShift
		if trace.Class(cls) != trace.Cond {
			if global {
				c.ByClass[cls]++
			}
			continue
		}
		taken := m&trace.MetaTaken != 0
		if global {
			c.ByClass[cls]++
			if taken {
				c.TakenCond++
			}
		}
		pc := pcs[i]
		if pc>>2&partMask != w {
			continue
		}
		var o uint32
		if taken {
			o = 1
		}
		slot := -1
		if useCache {
			slot = k.lookupAllocCacheSharded(sw, pc)
		}
		var hp *uint32
		if k.hAxis == predictor.AxisPerSet {
			hp = &k.setHists[pc>>2&k.histSetMask]
		} else {
			hp = &k.hists[slot]
		}
		var states []automaton.State
		var touched []uint64
		if k.pAxis == predictor.AxisPerSet {
			si := pc >> 2 & k.patSetMask
			states, touched = k.setStates[si], k.setTouched[si]
		} else {
			states, touched = k.phtStates[slot], k.phtTouched[slot]
		}
		h := *hp
		pat := h & histMask
		s := states[pat]
		pred := predMask>>s&1 != 0
		c.Predictions++
		if pred == taken {
			c.Correct++
		}
		if useCache && pred && taken {
			c.TargetPredictions++
			if t := k.targets[slot]; t != 0 && t == targets[i] {
				c.TargetCorrect++
			}
		}
		states[pat] = delta[uint32(s)<<1|o]
		touched[pat>>6] |= 1 << (pat & 63)
		if h&freshBit != 0 {
			h = o * histMask
		} else {
			h = (h<<1 | o) & histMask
		}
		*hp = h
		if slot >= 0 {
			k.preds[slot] = predMask>>states[h]&1 != 0
			if taken {
				k.targets[slot] = targets[i]
			}
		}
	}
	sw.stop = end
	sw.sinceCS = sinceCS
}

func (k *Kernel) runShardTap(sw *shardWorker, w, partMask uint32, instrs, pcs, targets []uint32, meta []uint8, start, end int, startSinceCS uint64, poll bool) {
	cs, interval := k.cfg.ContextSwitches, k.cfg.CSInterval
	ctx := k.cfg.Context
	if !poll {
		ctx = nil
	}
	c := &sw.c
	tap := sw.tap
	global := w == 0
	histMask := k.histMask
	delta, predMask := k.delta, k.predMask
	useCache := k.cache != nil
	g := partMask + 1
	sinceCS := startSinceCS // all workers see the same instruction stream
	var sinceCheck uint32
	for i := start; i < end; i++ {
		if ctx != nil {
			if sinceCheck++; sinceCheck >= checkInterval {
				sinceCheck = 0
				if err := ctx.Err(); err != nil {
					sw.err = err
					sw.stop = i
					sw.sinceCS = sinceCS
					return
				}
			}
		}
		m := meta[i]
		ins := uint64(instrs[i])
		sinceCS += ins
		if global {
			c.Instructions += ins
		}
		if m&trace.MetaTrap != 0 {
			if global {
				c.Traps++
			}
			if cs {
				k.flushShard(w, g)
				if global {
					c.ContextSwitches++
				}
				sinceCS = 0
				if tap != nil {
					tap.onSwitch()
				}
			}
			continue
		}
		if cs && sinceCS >= interval {
			k.flushShard(w, g)
			if global {
				c.ContextSwitches++
			}
			sinceCS = 0
			if tap != nil {
				tap.onSwitch()
			}
		}
		cls := m >> trace.MetaClassShift
		if trace.Class(cls) != trace.Cond {
			if global {
				c.ByClass[cls]++
			}
			continue
		}
		taken := m&trace.MetaTaken != 0
		if global {
			c.ByClass[cls]++
			if taken {
				c.TakenCond++
			}
		}
		pc := pcs[i]
		if pc>>2&partMask != w {
			if tap != nil {
				tap.skip()
			}
			continue
		}
		var o uint32
		if taken {
			o = 1
		}
		slot := -1
		if useCache {
			slot = k.lookupAllocCacheSharded(sw, pc)
		}
		var hp *uint32
		if k.hAxis == predictor.AxisPerSet {
			hp = &k.setHists[pc>>2&k.histSetMask]
		} else {
			hp = &k.hists[slot]
		}
		var states []automaton.State
		var touched []uint64
		if k.pAxis == predictor.AxisPerSet {
			si := pc >> 2 & k.patSetMask
			states, touched = k.setStates[si], k.setTouched[si]
		} else {
			states, touched = k.phtStates[slot], k.phtTouched[slot]
		}
		h := *hp
		pat := h & histMask
		s := states[pat]
		pred := predMask>>s&1 != 0
		c.Predictions++
		if pred == taken {
			c.Correct++
		}
		if tap != nil {
			tap.resolve(pc, taken, pred == taken)
		}
		if useCache && pred && taken {
			c.TargetPredictions++
			if t := k.targets[slot]; t != 0 && t == targets[i] {
				c.TargetCorrect++
			}
		}
		states[pat] = delta[uint32(s)<<1|o]
		touched[pat>>6] |= 1 << (pat & 63)
		if h&freshBit != 0 {
			h = o * histMask
		} else {
			h = (h<<1 | o) & histMask
		}
		*hp = h
		if slot >= 0 {
			k.preds[slot] = predMask>>states[h]&1 != 0
			if taken {
				k.targets[slot] = targets[i]
			}
		}
	}
	sw.stop = end
	sw.sinceCS = sinceCS
}

// lookupAllocCacheSharded is lookupAllocCache against the shared mirror
// with the worker's private clock and counters. Only slots in the
// worker's partition are ever touched, so the shared arrays see disjoint
// writes.
func (k *Kernel) lookupAllocCacheSharded(sw *shardWorker, pc uint32) int {
	sw.lookups++
	base := int(pc>>2&k.setMask) * k.assoc
	for w := 0; w < k.assoc; w++ {
		j := base + w
		if k.valid[j] && k.pcs[j] == pc {
			sw.clock++
			k.stamps[j] = sw.clock
			return j
		}
	}
	sw.misses++
	victim := base
	for w := 0; w < k.assoc; w++ {
		j := base + w
		if !k.valid[j] {
			victim = j
			break
		}
		if k.stamps[j] < k.stamps[victim] {
			victim = j
		}
	}
	recycled := k.valid[victim] && k.pcs[victim] != pc
	sw.clock++
	k.ever[victim] = true
	k.valid[victim] = true
	k.pcs[victim] = pc
	k.stamps[victim] = sw.clock
	k.hists[victim] = k.freshHist
	k.preds[victim] = true
	if k.perAddrPHT {
		switch {
		case k.phtStates[victim] == nil:
			t := k.newSlotPHT()
			k.phtTables[victim] = t
			k.phtStates[victim] = t.RawStates()
			k.phtTouched[victim] = t.RawTouched()
		case recycled && !k.view.Config.InheritPHTOnReplace:
			st := k.phtStates[victim]
			for i := range st {
				st[i] = k.initState
			}
			tt := k.phtTouched[victim]
			for i := range tt {
				tt[i] = 0
			}
		}
	}
	return victim
}

// flushShard invalidates the worker's partition of the BHT mirror and
// reinitialises its history registers (context switch, §5.1.4).
func (k *Kernel) flushShard(w, g uint32) {
	if k.cache != nil {
		sets := int(k.setMask) + 1
		for set := int(w); set < sets; set += int(g) {
			base := set * k.assoc
			for j := base; j < base+k.assoc; j++ {
				k.valid[j] = false
			}
		}
	}
	if k.hAxis == predictor.AxisPerSet {
		for i := int(w); i < len(k.setHists); i += int(g) {
			k.setHists[i] = k.resetHist
		}
	}
}
