package fastpath

// The hot loops. Each run* function walks the packed columns by index
// with the predict→verify→update step fused into straight-line array
// code; the flatloop analyzer in cmd/brlint enforces that no interface
// method other than context.Context cancellation polling is called from
// these functions. Specialized loops cover the paper's three
// implementations (GAg, PAg, PAp on the practical BHT); runGeneric
// covers the taxonomy extensions and the Ideal table with the same flat
// state, trading a few predictable branches for generality.

import (
	"twolevel/internal/automaton"
	"twolevel/internal/predictor"
	"twolevel/internal/trace"
)

// runStatic replays the stateless static schemes (AlwaysTaken, BTFN).
// Like every hot loop here it has a tap-free twin: with telemetry off
// the loop carries no tap branch at all (see runPAgCache).
func (k *Kernel) runStatic(instrs, pcs, targets []uint32, meta []uint8, start, end int) (int, error) {
	if k.tap == nil {
		return k.runStaticPlain(instrs, pcs, targets, meta, start, end)
	}
	return k.runStaticTap(instrs, pcs, targets, meta, start, end)
}

func (k *Kernel) runStaticPlain(instrs, pcs, targets []uint32, meta []uint8, start, end int) (int, error) {
	btfn := k.kind == kindBTFN
	cs, interval := k.cfg.ContextSwitches, k.cfg.CSInterval
	ctx := k.cfg.Context
	c := &k.c
	sinceCS := k.sinceCS
	var sinceCheck uint32
	i := start
	var err error
	for ; i < end; i++ {
		if ctx != nil {
			if sinceCheck++; sinceCheck >= checkInterval {
				sinceCheck = 0
				if err = ctx.Err(); err != nil {
					break
				}
			}
		}
		m := meta[i]
		ins := uint64(instrs[i])
		c.Instructions += ins
		sinceCS += ins
		if m&trace.MetaTrap != 0 {
			c.Traps++
			if cs {
				c.ContextSwitches++
				sinceCS = 0
			}
			continue
		}
		if cs && sinceCS >= interval {
			c.ContextSwitches++
			sinceCS = 0
		}
		cls := m >> trace.MetaClassShift
		c.ByClass[cls]++
		if trace.Class(cls) != trace.Cond {
			continue
		}
		taken := m&trace.MetaTaken != 0
		if taken {
			c.TakenCond++
		}
		pred := true
		if btfn {
			pred = targets[i] < pcs[i]
		}
		c.Predictions++
		if pred == taken {
			c.Correct++
		}
	}
	k.sinceCS = sinceCS
	return i - start, err
}

func (k *Kernel) runStaticTap(instrs, pcs, targets []uint32, meta []uint8, start, end int) (int, error) {
	btfn := k.kind == kindBTFN
	cs, interval := k.cfg.ContextSwitches, k.cfg.CSInterval
	ctx := k.cfg.Context
	c := &k.c
	tap := k.tap
	sinceCS := k.sinceCS
	var sinceCheck uint32
	i := start
	var err error
	for ; i < end; i++ {
		if ctx != nil {
			if sinceCheck++; sinceCheck >= checkInterval {
				sinceCheck = 0
				if err = ctx.Err(); err != nil {
					break
				}
			}
		}
		m := meta[i]
		ins := uint64(instrs[i])
		c.Instructions += ins
		sinceCS += ins
		if m&trace.MetaTrap != 0 {
			c.Traps++
			if cs {
				c.ContextSwitches++
				sinceCS = 0
				if tap != nil {
					tap.onSwitch()
				}
			}
			continue
		}
		if cs && sinceCS >= interval {
			c.ContextSwitches++
			sinceCS = 0
			if tap != nil {
				tap.onSwitch()
			}
		}
		cls := m >> trace.MetaClassShift
		c.ByClass[cls]++
		if trace.Class(cls) != trace.Cond {
			continue
		}
		taken := m&trace.MetaTaken != 0
		if taken {
			c.TakenCond++
		}
		pred := true
		if btfn {
			pred = targets[i] < pcs[i]
		}
		c.Predictions++
		if pred == taken {
			c.Correct++
		}
		if tap != nil {
			tap.resolve(pcs[i], taken, pred == taken)
		}
	}
	k.sinceCS = sinceCS
	return i - start, err
}

// runGAg replays the global/global variations (GAg, GSg presets): one
// shared history register, one shared pattern table — the entire
// predictor state is a uint32 and two slices.
func (k *Kernel) runGAg(instrs, pcs []uint32, meta []uint8, start, end int) (int, error) {
	if k.tap == nil {
		return k.runGAgPlain(instrs, pcs, meta, start, end)
	}
	return k.runGAgTap(instrs, pcs, meta, start, end)
}

func (k *Kernel) runGAgPlain(instrs, pcs []uint32, meta []uint8, start, end int) (int, error) {
	cs, interval := k.cfg.ContextSwitches, k.cfg.CSInterval
	ctx := k.cfg.Context
	c := &k.c
	histMask, resetHist := k.histMask, k.resetHist
	delta, predMask := k.delta, k.predMask
	states, touched := k.gStates, k.gTouched
	ghr := k.ghr
	sinceCS := k.sinceCS
	var sinceCheck uint32
	i := start
	var err error
	for ; i < end; i++ {
		if ctx != nil {
			if sinceCheck++; sinceCheck >= checkInterval {
				sinceCheck = 0
				if err = ctx.Err(); err != nil {
					break
				}
			}
		}
		m := meta[i]
		ins := uint64(instrs[i])
		c.Instructions += ins
		sinceCS += ins
		if m&trace.MetaTrap != 0 {
			c.Traps++
			if cs {
				ghr = resetHist
				c.ContextSwitches++
				sinceCS = 0
			}
			continue
		}
		if cs && sinceCS >= interval {
			ghr = resetHist
			c.ContextSwitches++
			sinceCS = 0
		}
		cls := m >> trace.MetaClassShift
		c.ByClass[cls]++
		if trace.Class(cls) != trace.Cond {
			continue
		}
		taken := m&trace.MetaTaken != 0
		var o uint32
		if taken {
			o = 1
			c.TakenCond++
		}
		pat := ghr & histMask
		s := states[pat]
		pred := predMask>>s&1 != 0
		c.Predictions++
		if pred == taken {
			c.Correct++
		}
		states[pat] = delta[uint32(s)<<1|o]
		touched[pat>>6] |= 1 << (pat & 63)
		if ghr&freshBit != 0 {
			ghr = o * histMask // smear the first outcome (§4.2)
		} else {
			ghr = (ghr<<1 | o) & histMask
		}
	}
	k.ghr = ghr
	k.sinceCS = sinceCS
	return i - start, err
}

func (k *Kernel) runGAgTap(instrs, pcs []uint32, meta []uint8, start, end int) (int, error) {
	cs, interval := k.cfg.ContextSwitches, k.cfg.CSInterval
	ctx := k.cfg.Context
	c := &k.c
	tap := k.tap
	histMask, resetHist := k.histMask, k.resetHist
	delta, predMask := k.delta, k.predMask
	states, touched := k.gStates, k.gTouched
	ghr := k.ghr
	sinceCS := k.sinceCS
	var sinceCheck uint32
	i := start
	var err error
	for ; i < end; i++ {
		if ctx != nil {
			if sinceCheck++; sinceCheck >= checkInterval {
				sinceCheck = 0
				if err = ctx.Err(); err != nil {
					break
				}
			}
		}
		m := meta[i]
		ins := uint64(instrs[i])
		c.Instructions += ins
		sinceCS += ins
		if m&trace.MetaTrap != 0 {
			c.Traps++
			if cs {
				ghr = resetHist
				c.ContextSwitches++
				sinceCS = 0
				if tap != nil {
					tap.onSwitch()
				}
			}
			continue
		}
		if cs && sinceCS >= interval {
			ghr = resetHist
			c.ContextSwitches++
			sinceCS = 0
			if tap != nil {
				tap.onSwitch()
			}
		}
		cls := m >> trace.MetaClassShift
		c.ByClass[cls]++
		if trace.Class(cls) != trace.Cond {
			continue
		}
		taken := m&trace.MetaTaken != 0
		var o uint32
		if taken {
			o = 1
			c.TakenCond++
		}
		pat := ghr & histMask
		s := states[pat]
		pred := predMask>>s&1 != 0
		c.Predictions++
		if pred == taken {
			c.Correct++
		}
		if tap != nil {
			tap.resolve(pcs[i], taken, pred == taken)
		}
		states[pat] = delta[uint32(s)<<1|o]
		touched[pat>>6] |= 1 << (pat & 63)
		if ghr&freshBit != 0 {
			ghr = o * histMask // smear the first outcome (§4.2)
		} else {
			ghr = (ghr<<1 | o) & histMask
		}
	}
	k.ghr = ghr
	k.sinceCS = sinceCS
	return i - start, err
}

// lookupAllocCache finds or allocates pc's slot in the mirrored
// practical BHT, reproducing the interpretive entry() semantics: LRU
// victim selection, §4.2 payload initialisation, and PAp per-slot
// pattern-table materialise/reset rules. Counts one lookup (and a miss
// when allocating) toward the BHT hit-rate counters.
func (k *Kernel) lookupAllocCache(pc uint32) int {
	k.lookups++
	base := int(pc>>2&k.setMask) * k.assoc
	for w := 0; w < k.assoc; w++ {
		j := base + w
		if k.valid[j] && k.pcs[j] == pc {
			k.clock++
			k.stamps[j] = k.clock
			return j
		}
	}
	k.misses++
	victim := base
	for w := 0; w < k.assoc; w++ {
		j := base + w
		if !k.valid[j] {
			victim = j
			break
		}
		if k.stamps[j] < k.stamps[victim] {
			victim = j
		}
	}
	recycled := k.valid[victim] && k.pcs[victim] != pc
	k.clock++
	k.ever[victim] = true
	k.valid[victim] = true
	k.pcs[victim] = pc
	k.stamps[victim] = k.clock
	k.hists[victim] = k.freshHist
	k.preds[victim] = true
	if k.perAddrPHT {
		switch {
		case k.phtStates[victim] == nil:
			t := k.newSlotPHT()
			k.phtTables[victim] = t
			k.phtStates[victim] = t.RawStates()
			k.phtTouched[victim] = t.RawTouched()
		case recycled && !k.view.Config.InheritPHTOnReplace:
			st := k.phtStates[victim]
			for i := range st {
				st[i] = k.initState
			}
			tt := k.phtTouched[victim]
			for i := range tt {
				tt[i] = 0
			}
		}
	}
	return victim
}

// lookupAllocIdeal is lookupAllocCache for the Ideal table: no capacity,
// no replacement, flushed entries revive with their pattern table intact.
func (k *Kernel) lookupAllocIdeal(pc uint32) int {
	k.lookups++
	if idx, ok := k.idealIdx[pc]; ok && k.valid[idx] {
		return int(idx)
	}
	k.misses++
	idx, ok := k.idealIdx[pc]
	if !ok {
		idx = int32(len(k.idealPCs))
		k.idealIdx[pc] = idx
		k.idealPCs = append(k.idealPCs, pc)
		k.valid = append(k.valid, false)
		k.hists = append(k.hists, 0)
		k.preds = append(k.preds, false)
		k.targets = append(k.targets, 0)
		if k.perAddrPHT {
			k.phtTables = append(k.phtTables, nil)
			k.phtStates = append(k.phtStates, nil)
			k.phtTouched = append(k.phtTouched, nil)
		}
	}
	k.valid[idx] = true
	k.hists[idx] = k.freshHist
	k.preds[idx] = true
	if k.perAddrPHT && k.phtStates[idx] == nil {
		t := k.newSlotPHT()
		k.phtTables[idx] = t
		k.phtStates[idx] = t.RawStates()
		k.phtTouched[idx] = t.RawTouched()
	}
	return int(idx)
}

// flushState is the predictor-side half of a context switch: invalidate
// the BHT mirror and reinitialise the first-level history, retaining
// pattern tables (§5.1.4).
func (k *Kernel) flushState() {
	for i := range k.valid {
		k.valid[i] = false
	}
	switch k.hAxis {
	case predictor.AxisGlobal:
		k.ghr = k.resetHist
	case predictor.AxisPerSet:
		for i := range k.setHists {
			k.setHists[i] = k.resetHist
		}
	}
}

// runPAgCache replays PAg/PSg on the practical BHT: per-address history
// registers in the mirrored cache, one global pattern table. The
// tap-free twin exists so a run without telemetry pays nothing — not
// even a per-event nil check — keeping the headline kernel throughput
// where it was before the tap existed.
func (k *Kernel) runPAgCache(instrs, pcs, targets []uint32, meta []uint8, start, end int) (int, error) {
	if k.tap == nil {
		return k.runPAgCachePlain(instrs, pcs, targets, meta, start, end)
	}
	return k.runPAgCacheTap(instrs, pcs, targets, meta, start, end)
}

func (k *Kernel) runPAgCachePlain(instrs, pcs, targets []uint32, meta []uint8, start, end int) (int, error) {
	cs, interval := k.cfg.ContextSwitches, k.cfg.CSInterval
	ctx := k.cfg.Context
	c := &k.c
	histMask := k.histMask
	delta, predMask := k.delta, k.predMask
	states, touched := k.gStates, k.gTouched
	sinceCS := k.sinceCS
	var sinceCheck uint32
	i := start
	var err error
	for ; i < end; i++ {
		if ctx != nil {
			if sinceCheck++; sinceCheck >= checkInterval {
				sinceCheck = 0
				if err = ctx.Err(); err != nil {
					break
				}
			}
		}
		m := meta[i]
		ins := uint64(instrs[i])
		c.Instructions += ins
		sinceCS += ins
		if m&trace.MetaTrap != 0 {
			c.Traps++
			if cs {
				valid := k.valid
				for j := range valid {
					valid[j] = false
				}
				c.ContextSwitches++
				sinceCS = 0
			}
			continue
		}
		if cs && sinceCS >= interval {
			valid := k.valid
			for j := range valid {
				valid[j] = false
			}
			c.ContextSwitches++
			sinceCS = 0
		}
		cls := m >> trace.MetaClassShift
		c.ByClass[cls]++
		if trace.Class(cls) != trace.Cond {
			continue
		}
		taken := m&trace.MetaTaken != 0
		var o uint32
		if taken {
			o = 1
			c.TakenCond++
		}
		pc := pcs[i]
		slot := k.lookupAllocCache(pc)
		h := k.hists[slot]
		pat := h & histMask
		s := states[pat]
		pred := predMask>>s&1 != 0
		c.Predictions++
		if pred == taken {
			c.Correct++
		}
		if pred && taken {
			c.TargetPredictions++
			if t := k.targets[slot]; t != 0 && t == targets[i] {
				c.TargetCorrect++
			}
		}
		states[pat] = delta[uint32(s)<<1|o]
		touched[pat>>6] |= 1 << (pat & 63)
		if h&freshBit != 0 {
			h = o * histMask
		} else {
			h = (h<<1 | o) & histMask
		}
		k.hists[slot] = h
		k.preds[slot] = predMask>>states[h]&1 != 0
		if taken {
			k.targets[slot] = targets[i]
		}
	}
	k.sinceCS = sinceCS
	return i - start, err
}

func (k *Kernel) runPAgCacheTap(instrs, pcs, targets []uint32, meta []uint8, start, end int) (int, error) {
	cs, interval := k.cfg.ContextSwitches, k.cfg.CSInterval
	ctx := k.cfg.Context
	c := &k.c
	tap := k.tap
	histMask := k.histMask
	delta, predMask := k.delta, k.predMask
	states, touched := k.gStates, k.gTouched
	sinceCS := k.sinceCS
	var sinceCheck uint32
	i := start
	var err error
	for ; i < end; i++ {
		if ctx != nil {
			if sinceCheck++; sinceCheck >= checkInterval {
				sinceCheck = 0
				if err = ctx.Err(); err != nil {
					break
				}
			}
		}
		m := meta[i]
		ins := uint64(instrs[i])
		c.Instructions += ins
		sinceCS += ins
		if m&trace.MetaTrap != 0 {
			c.Traps++
			if cs {
				valid := k.valid
				for j := range valid {
					valid[j] = false
				}
				c.ContextSwitches++
				sinceCS = 0
				if tap != nil {
					tap.onSwitch()
				}
			}
			continue
		}
		if cs && sinceCS >= interval {
			valid := k.valid
			for j := range valid {
				valid[j] = false
			}
			c.ContextSwitches++
			sinceCS = 0
			if tap != nil {
				tap.onSwitch()
			}
		}
		cls := m >> trace.MetaClassShift
		c.ByClass[cls]++
		if trace.Class(cls) != trace.Cond {
			continue
		}
		taken := m&trace.MetaTaken != 0
		var o uint32
		if taken {
			o = 1
			c.TakenCond++
		}
		pc := pcs[i]
		slot := k.lookupAllocCache(pc)
		h := k.hists[slot]
		pat := h & histMask
		s := states[pat]
		pred := predMask>>s&1 != 0
		c.Predictions++
		if pred == taken {
			c.Correct++
		}
		if tap != nil {
			tap.resolve(pc, taken, pred == taken)
		}
		if pred && taken {
			c.TargetPredictions++
			if t := k.targets[slot]; t != 0 && t == targets[i] {
				c.TargetCorrect++
			}
		}
		states[pat] = delta[uint32(s)<<1|o]
		touched[pat>>6] |= 1 << (pat & 63)
		if h&freshBit != 0 {
			h = o * histMask
		} else {
			h = (h<<1 | o) & histMask
		}
		k.hists[slot] = h
		k.preds[slot] = predMask>>states[h]&1 != 0
		if taken {
			k.targets[slot] = targets[i]
		}
	}
	k.sinceCS = sinceCS
	return i - start, err
}

// runPApCache replays PAp on the practical BHT: per-address history and
// a per-slot pattern table, both in the mirrored cache.
func (k *Kernel) runPApCache(instrs, pcs, targets []uint32, meta []uint8, start, end int) (int, error) {
	if k.tap == nil {
		return k.runPApCachePlain(instrs, pcs, targets, meta, start, end)
	}
	return k.runPApCacheTap(instrs, pcs, targets, meta, start, end)
}

func (k *Kernel) runPApCachePlain(instrs, pcs, targets []uint32, meta []uint8, start, end int) (int, error) {
	cs, interval := k.cfg.ContextSwitches, k.cfg.CSInterval
	ctx := k.cfg.Context
	c := &k.c
	histMask := k.histMask
	delta, predMask := k.delta, k.predMask
	sinceCS := k.sinceCS
	var sinceCheck uint32
	i := start
	var err error
	for ; i < end; i++ {
		if ctx != nil {
			if sinceCheck++; sinceCheck >= checkInterval {
				sinceCheck = 0
				if err = ctx.Err(); err != nil {
					break
				}
			}
		}
		m := meta[i]
		ins := uint64(instrs[i])
		c.Instructions += ins
		sinceCS += ins
		if m&trace.MetaTrap != 0 {
			c.Traps++
			if cs {
				valid := k.valid
				for j := range valid {
					valid[j] = false
				}
				c.ContextSwitches++
				sinceCS = 0
			}
			continue
		}
		if cs && sinceCS >= interval {
			valid := k.valid
			for j := range valid {
				valid[j] = false
			}
			c.ContextSwitches++
			sinceCS = 0
		}
		cls := m >> trace.MetaClassShift
		c.ByClass[cls]++
		if trace.Class(cls) != trace.Cond {
			continue
		}
		taken := m&trace.MetaTaken != 0
		var o uint32
		if taken {
			o = 1
			c.TakenCond++
		}
		pc := pcs[i]
		slot := k.lookupAllocCache(pc)
		states := k.phtStates[slot]
		touched := k.phtTouched[slot]
		h := k.hists[slot]
		pat := h & histMask
		s := states[pat]
		pred := predMask>>s&1 != 0
		c.Predictions++
		if pred == taken {
			c.Correct++
		}
		if pred && taken {
			c.TargetPredictions++
			if t := k.targets[slot]; t != 0 && t == targets[i] {
				c.TargetCorrect++
			}
		}
		states[pat] = delta[uint32(s)<<1|o]
		touched[pat>>6] |= 1 << (pat & 63)
		if h&freshBit != 0 {
			h = o * histMask
		} else {
			h = (h<<1 | o) & histMask
		}
		k.hists[slot] = h
		k.preds[slot] = predMask>>states[h]&1 != 0
		if taken {
			k.targets[slot] = targets[i]
		}
	}
	k.sinceCS = sinceCS
	return i - start, err
}

func (k *Kernel) runPApCacheTap(instrs, pcs, targets []uint32, meta []uint8, start, end int) (int, error) {
	cs, interval := k.cfg.ContextSwitches, k.cfg.CSInterval
	ctx := k.cfg.Context
	c := &k.c
	tap := k.tap
	histMask := k.histMask
	delta, predMask := k.delta, k.predMask
	sinceCS := k.sinceCS
	var sinceCheck uint32
	i := start
	var err error
	for ; i < end; i++ {
		if ctx != nil {
			if sinceCheck++; sinceCheck >= checkInterval {
				sinceCheck = 0
				if err = ctx.Err(); err != nil {
					break
				}
			}
		}
		m := meta[i]
		ins := uint64(instrs[i])
		c.Instructions += ins
		sinceCS += ins
		if m&trace.MetaTrap != 0 {
			c.Traps++
			if cs {
				valid := k.valid
				for j := range valid {
					valid[j] = false
				}
				c.ContextSwitches++
				sinceCS = 0
				if tap != nil {
					tap.onSwitch()
				}
			}
			continue
		}
		if cs && sinceCS >= interval {
			valid := k.valid
			for j := range valid {
				valid[j] = false
			}
			c.ContextSwitches++
			sinceCS = 0
			if tap != nil {
				tap.onSwitch()
			}
		}
		cls := m >> trace.MetaClassShift
		c.ByClass[cls]++
		if trace.Class(cls) != trace.Cond {
			continue
		}
		taken := m&trace.MetaTaken != 0
		var o uint32
		if taken {
			o = 1
			c.TakenCond++
		}
		pc := pcs[i]
		slot := k.lookupAllocCache(pc)
		states := k.phtStates[slot]
		touched := k.phtTouched[slot]
		h := k.hists[slot]
		pat := h & histMask
		s := states[pat]
		pred := predMask>>s&1 != 0
		c.Predictions++
		if pred == taken {
			c.Correct++
		}
		if tap != nil {
			tap.resolve(pc, taken, pred == taken)
		}
		if pred && taken {
			c.TargetPredictions++
			if t := k.targets[slot]; t != 0 && t == targets[i] {
				c.TargetCorrect++
			}
		}
		states[pat] = delta[uint32(s)<<1|o]
		touched[pat>>6] |= 1 << (pat & 63)
		if h&freshBit != 0 {
			h = o * histMask
		} else {
			h = (h<<1 | o) & histMask
		}
		k.hists[slot] = h
		k.preds[slot] = predMask>>states[h]&1 != 0
		if taken {
			k.targets[slot] = targets[i]
		}
	}
	k.sinceCS = sinceCS
	return i - start, err
}

// runGeneric replays every remaining flattened variation — the taxonomy
// extensions (GAp/GAs/PAs/SAg/SAs/SAp) and any variation on the Ideal
// BHT — resolving the history and pattern levels per branch from the
// same flat state the specialized loops use.
func (k *Kernel) runGeneric(instrs, pcs, targets []uint32, meta []uint8, start, end int) (int, error) {
	if k.tap == nil {
		return k.runGenericPlain(instrs, pcs, targets, meta, start, end)
	}
	return k.runGenericTap(instrs, pcs, targets, meta, start, end)
}

func (k *Kernel) runGenericPlain(instrs, pcs, targets []uint32, meta []uint8, start, end int) (int, error) {
	cs, interval := k.cfg.ContextSwitches, k.cfg.CSInterval
	ctx := k.cfg.Context
	c := &k.c
	histMask := k.histMask
	delta, predMask := k.delta, k.predMask
	hasStore := k.store != nil
	useCache := k.cache != nil
	sinceCS := k.sinceCS
	var sinceCheck uint32
	i := start
	var err error
	for ; i < end; i++ {
		if ctx != nil {
			if sinceCheck++; sinceCheck >= checkInterval {
				sinceCheck = 0
				if err = ctx.Err(); err != nil {
					break
				}
			}
		}
		m := meta[i]
		ins := uint64(instrs[i])
		c.Instructions += ins
		sinceCS += ins
		if m&trace.MetaTrap != 0 {
			c.Traps++
			if cs {
				k.flushState()
				c.ContextSwitches++
				sinceCS = 0
			}
			continue
		}
		if cs && sinceCS >= interval {
			k.flushState()
			c.ContextSwitches++
			sinceCS = 0
		}
		cls := m >> trace.MetaClassShift
		c.ByClass[cls]++
		if trace.Class(cls) != trace.Cond {
			continue
		}
		taken := m&trace.MetaTaken != 0
		var o uint32
		if taken {
			o = 1
			c.TakenCond++
		}
		pc := pcs[i]
		slot := -1
		if hasStore {
			if useCache {
				slot = k.lookupAllocCache(pc)
			} else {
				slot = k.lookupAllocIdeal(pc)
			}
		}
		var hp *uint32
		switch k.hAxis {
		case predictor.AxisGlobal:
			hp = &k.ghr
		case predictor.AxisPerSet:
			hp = &k.setHists[pc>>2&k.histSetMask]
		default:
			hp = &k.hists[slot]
		}
		var states []automaton.State
		var touched []uint64
		switch k.pAxis {
		case predictor.AxisGlobal:
			states, touched = k.gStates, k.gTouched
		case predictor.AxisPerSet:
			si := pc >> 2 & k.patSetMask
			states, touched = k.setStates[si], k.setTouched[si]
		default:
			states, touched = k.phtStates[slot], k.phtTouched[slot]
		}
		h := *hp
		pat := h & histMask
		s := states[pat]
		pred := predMask>>s&1 != 0
		c.Predictions++
		if pred == taken {
			c.Correct++
		}
		if hasStore && pred && taken {
			c.TargetPredictions++
			if t := k.targets[slot]; t != 0 && t == targets[i] {
				c.TargetCorrect++
			}
		}
		states[pat] = delta[uint32(s)<<1|o]
		touched[pat>>6] |= 1 << (pat & 63)
		if h&freshBit != 0 {
			h = o * histMask
		} else {
			h = (h<<1 | o) & histMask
		}
		*hp = h
		if slot >= 0 {
			k.preds[slot] = predMask>>states[h]&1 != 0
			if taken {
				k.targets[slot] = targets[i]
			}
		}
	}
	k.sinceCS = sinceCS
	return i - start, err
}

func (k *Kernel) runGenericTap(instrs, pcs, targets []uint32, meta []uint8, start, end int) (int, error) {
	cs, interval := k.cfg.ContextSwitches, k.cfg.CSInterval
	ctx := k.cfg.Context
	c := &k.c
	tap := k.tap
	histMask := k.histMask
	delta, predMask := k.delta, k.predMask
	hasStore := k.store != nil
	useCache := k.cache != nil
	sinceCS := k.sinceCS
	var sinceCheck uint32
	i := start
	var err error
	for ; i < end; i++ {
		if ctx != nil {
			if sinceCheck++; sinceCheck >= checkInterval {
				sinceCheck = 0
				if err = ctx.Err(); err != nil {
					break
				}
			}
		}
		m := meta[i]
		ins := uint64(instrs[i])
		c.Instructions += ins
		sinceCS += ins
		if m&trace.MetaTrap != 0 {
			c.Traps++
			if cs {
				k.flushState()
				c.ContextSwitches++
				sinceCS = 0
				if tap != nil {
					tap.onSwitch()
				}
			}
			continue
		}
		if cs && sinceCS >= interval {
			k.flushState()
			c.ContextSwitches++
			sinceCS = 0
			if tap != nil {
				tap.onSwitch()
			}
		}
		cls := m >> trace.MetaClassShift
		c.ByClass[cls]++
		if trace.Class(cls) != trace.Cond {
			continue
		}
		taken := m&trace.MetaTaken != 0
		var o uint32
		if taken {
			o = 1
			c.TakenCond++
		}
		pc := pcs[i]
		slot := -1
		if hasStore {
			if useCache {
				slot = k.lookupAllocCache(pc)
			} else {
				slot = k.lookupAllocIdeal(pc)
			}
		}
		var hp *uint32
		switch k.hAxis {
		case predictor.AxisGlobal:
			hp = &k.ghr
		case predictor.AxisPerSet:
			hp = &k.setHists[pc>>2&k.histSetMask]
		default:
			hp = &k.hists[slot]
		}
		var states []automaton.State
		var touched []uint64
		switch k.pAxis {
		case predictor.AxisGlobal:
			states, touched = k.gStates, k.gTouched
		case predictor.AxisPerSet:
			si := pc >> 2 & k.patSetMask
			states, touched = k.setStates[si], k.setTouched[si]
		default:
			states, touched = k.phtStates[slot], k.phtTouched[slot]
		}
		h := *hp
		pat := h & histMask
		s := states[pat]
		pred := predMask>>s&1 != 0
		c.Predictions++
		if pred == taken {
			c.Correct++
		}
		if tap != nil {
			tap.resolve(pc, taken, pred == taken)
		}
		if hasStore && pred && taken {
			c.TargetPredictions++
			if t := k.targets[slot]; t != 0 && t == targets[i] {
				c.TargetCorrect++
			}
		}
		states[pat] = delta[uint32(s)<<1|o]
		touched[pat>>6] |= 1 << (pat & 63)
		if h&freshBit != 0 {
			h = o * histMask
		} else {
			h = (h<<1 | o) & histMask
		}
		*hp = h
		if slot >= 0 {
			k.preds[slot] = predMask>>states[h]&1 != 0
			if taken {
				k.targets[slot] = targets[i]
			}
		}
	}
	k.sinceCS = sinceCS
	return i - start, err
}
