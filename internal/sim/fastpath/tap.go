package fastpath

// Kernel-native telemetry: a Tap accumulates the interval accuracy series
// and the per-PC mispredict profile directly in the flat loops, so a run
// that wants live telemetry stays on the kernel instead of falling back
// to the interpretive runner's Observer callbacks. The accumulators are
// plain per-shard arrays and maps merged deterministically at writeback;
// every hot-loop call site is nil-guarded (one predictable branch when
// telemetry is off — the same zero-cost-when-disabled contract Observer
// carries, enforced by the obsnilguard analyzer).

import (
	"sort"

	"twolevel/internal/telemetry"
)

// Tap is one replay's telemetry accumulator. In a sharded run every
// worker owns a private fork; each fork counts every resolved conditional
// branch (the global resolution index times interval bins and the warmup
// split) but bins only its own partition's predictions, so absorbing the
// forks reproduces the serial series bit for bit.
type Tap struct {
	every  uint64 // interval size in resolved branches (0 = no series)
	warmup uint64 // resolutions attributed to warmup (0 = no split)
	topk   int    // per-PC profile rows to report (0 = no profile)

	total   uint64   // resolved conditional branches seen so far
	preds   []uint64 // per-interval prediction counts
	correct []uint64 // per-interval correct counts

	recordSwitches bool
	switches       []uint64 // resolution index at each context switch

	pcm map[uint32]*pcTap // nil when the per-PC profile is off
}

// pcTap mirrors telemetry.HotBranches' per-PC counters plus the
// warmup-miss split the streaming verdict classifier consumes.
type pcTap struct {
	exec, taken, miss, warmupMiss uint64
}

// newTap returns the accumulator cfg asks for, or nil when telemetry is
// off entirely.
func newTap(cfg Config) *Tap {
	if cfg.Interval == 0 && cfg.TopPCs <= 0 {
		return nil
	}
	t := &Tap{
		every:          cfg.Interval,
		warmup:         cfg.Warmup,
		topk:           cfg.TopPCs,
		recordSwitches: true,
	}
	if t.topk > 0 {
		t.pcm = make(map[uint32]*pcTap)
	}
	return t
}

// fork returns worker w's private accumulator for a sharded run. Only
// worker 0 records context switches (it owns the global accounting).
func (t *Tap) fork(w int) *Tap {
	f := &Tap{ //lint:allow hotalloc per-worker fork: O(shards) setup, not per-event work
		every:          t.every,
		warmup:         t.warmup,
		topk:           t.topk,
		recordSwitches: w == 0,
	}
	if t.pcm != nil {
		f.pcm = make(map[uint32]*pcTap) //lint:allow hotalloc per-worker fork: O(shards) setup, not per-event work
	}
	return f
}

// resolve folds one resolved conditional branch owned by this tap.
func (t *Tap) resolve(pc uint32, taken, correct bool) {
	if t.every > 0 {
		j := int(t.total / t.every)
		for len(t.preds) <= j {
			t.preds = append(t.preds, 0)     //lint:allow hotalloc amortised interval-array growth: one extension per interval, not per event
			t.correct = append(t.correct, 0) //lint:allow hotalloc amortised interval-array growth: one extension per interval, not per event
		}
		t.preds[j]++
		if correct {
			t.correct[j]++
		}
	}
	if t.pcm != nil {
		st := t.pcm[pc]
		if st == nil {
			st = &pcTap{}  //lint:allow hotalloc lazy per-PC init: one allocation per distinct PC, amortised over its executions
			t.pcm[pc] = st //lint:allow hotalloc lazy per-PC init: the map grows once per distinct PC, not per event
		}
		st.exec++
		if taken {
			st.taken++
		}
		if !correct {
			st.miss++
			if t.warmup > 0 && t.total < t.warmup {
				st.warmupMiss++
			}
		}
	}
	t.total++
}

// skip advances the global resolution index past a conditional branch
// another partition owns (sharded runs only).
func (t *Tap) skip() {
	t.total++
}

// onSwitch records the resolution index of a context switch.
func (t *Tap) onSwitch() {
	if t.recordSwitches {
		t.switches = append(t.switches, t.total) //lint:allow hotalloc one append per context switch, not per event
	}
}

// absorb merges worker fork o into t: elementwise interval sums, switch
// indices from the recording worker, and a union of the (disjoint,
// PC-partitioned) profiles. Deterministic regardless of scheduling.
func (t *Tap) absorb(o *Tap) {
	if o.total > t.total {
		t.total = o.total
	}
	for len(t.preds) < len(o.preds) {
		t.preds = append(t.preds, 0)     //lint:allow hotalloc per-worker merge at writeback, outside the per-event path
		t.correct = append(t.correct, 0) //lint:allow hotalloc per-worker merge at writeback, outside the per-event path
	}
	for j := range o.preds {
		t.preds[j] += o.preds[j]
		t.correct[j] += o.correct[j]
	}
	t.switches = append(t.switches, o.switches...) //lint:allow hotalloc per-worker merge at writeback, outside the per-event path
	if t.pcm != nil {
		for pc, st := range o.pcm {
			t.pcm[pc] = st //lint:allow hotalloc per-worker merge at writeback, outside the per-event path
		}
	}
}

// Telemetry materialises the tap's outputs: the interval accuracy series
// (bit-identical to telemetry.IntervalSeries over the same run), the
// context-switch resolution indices, and the top-K per-PC mispredict
// profile ordered like telemetry.HotBranches.Report (mispredicts
// descending, PC ascending). All nil when the respective mode was off.
func (k *Kernel) Telemetry() ([]telemetry.Sample, []uint64, []telemetry.PCStats) {
	t := k.tap
	if t == nil {
		return nil, nil, nil
	}
	var samples []telemetry.Sample
	var cum uint64
	for j := range t.preds {
		cum += t.preds[j]
		samples = append(samples, telemetry.Sample{
			Branches:    cum,
			Predictions: t.preds[j],
			Correct:     t.correct[j],
			Accuracy:    float64(t.correct[j]) / float64(t.preds[j]),
		})
	}
	var profile []telemetry.PCStats
	if t.pcm != nil {
		var misses uint64
		for _, st := range t.pcm {
			misses += st.miss
		}
		profile = make([]telemetry.PCStats, 0, len(t.pcm))
		for pc, st := range t.pcm {
			row := telemetry.PCStats{
				PC:           pc,
				Executions:   st.exec,
				Taken:        st.taken,
				Mispredicts:  st.miss,
				WarmupMisses: st.warmupMiss,
			}
			if st.exec > 0 {
				row.TakenRate = float64(st.taken) / float64(st.exec)
			}
			if misses > 0 {
				row.MissShare = float64(st.miss) / float64(misses)
			}
			profile = append(profile, row)
		}
		sort.Slice(profile, func(i, j int) bool {
			a, b := profile[i], profile[j]
			if a.Mispredicts != b.Mispredicts {
				return a.Mispredicts > b.Mispredicts
			}
			return a.PC < b.PC
		})
		if len(profile) > t.topk {
			profile = profile[:t.topk]
		}
	}
	return samples, t.switches, profile
}
