package sim

import (
	"reflect"
	"testing"

	"twolevel/internal/predictor"
	"twolevel/internal/spec"
	"twolevel/internal/telemetry"
	"twolevel/internal/trace"
)

// telemetryOptionSets mirrors the equivalence matrix of
// TestKernelMatchesInterpretive: plain, context-switch, budgeted and
// sharded replays all must produce the same telemetry.
func telemetryOptionSets(conds uint64) []struct {
	name string
	opts Options
} {
	return []struct {
		name string
		opts Options
	}{
		{"plain", Options{}},
		{"cs", Options{ContextSwitches: true, CSInterval: 1009}},
		{"budget", Options{MaxCondBranches: conds / 3}},
		{"cs-budget", Options{ContextSwitches: true, CSInterval: 1500, MaxCondBranches: conds / 2}},
		{"sharded", Options{Shards: 4}},
		{"cs-sharded", Options{ContextSwitches: true, CSInterval: 1009, Shards: 4}},
	}
}

// TestKernelTelemetryMatchesIntervalSeries is the telemetry bit-identity
// property: for every flattenable spec and option set, the kernel-native
// interval series equals the legacy IntervalSeries observer's output
// sample for sample, the context-switch indices match, and the per-PC
// profile agrees with the legacy HotBranches report and the interpretive
// sink path.
func TestKernelTelemetryMatchesIntervalSeries(t *testing.T) {
	snap := kernelSnapshot(24_000)
	conds := uint64(0)
	for i := 0; i < snap.Len(); i++ {
		e := snap.At(i)
		if !e.Trap && e.Branch.Class == trace.Cond {
			conds++
		}
	}
	const interval, topk = 512, 8
	for _, s := range kernelEquivSpecs {
		sp := spec.MustParse(s)
		for _, os := range telemetryOptionSets(conds) {
			// Reference: the legacy observers on the interpretive runner.
			iv := telemetry.NewIntervalSeries(interval)
			hot := telemetry.NewHotBranches(topk)
			refOpts := os.opts
			refOpts.DisableFastpath = true
			refOpts.Observer = telemetry.Multi(iv, hot)
			refRes, err := Run(buildKernelSpec(t, sp, snap), snap.Reader(), refOpts)
			if err != nil {
				t.Fatalf("%s/%s reference: %v", s, os.name, err)
			}

			// Kernel path: the Telemetry sink must not cost eligibility.
			sink := &Telemetry{Interval: interval, TopK: topk}
			fastOpts := os.opts
			fastOpts.Telemetry = sink
			p := buildKernelSpec(t, sp, snap)
			if !FastpathEligible(p, snap.Reader(), fastOpts) {
				t.Fatalf("%s/%s: Telemetry sink cost fastpath eligibility", s, os.name)
			}
			fastRes, err := Run(p, snap.Reader(), fastOpts)
			if err != nil {
				t.Fatalf("%s/%s kernel: %v", s, os.name, err)
			}
			if !reflect.DeepEqual(fastRes, refRes) {
				t.Errorf("%s/%s: kernel Result differs under telemetry:\n got %+v\nwant %+v",
					s, os.name, fastRes, refRes)
			}
			if !reflect.DeepEqual(sink.Samples, iv.Samples()) {
				t.Errorf("%s/%s: kernel samples differ from IntervalSeries:\n got %+v\nwant %+v",
					s, os.name, sink.Samples, iv.Samples())
			}
			if !reflect.DeepEqual(sink.Switches, iv.Switches()) {
				t.Errorf("%s/%s: kernel switch indices differ:\n got %v\nwant %v",
					s, os.name, sink.Switches, iv.Switches())
			}
			hotRef := hot.Report()
			if len(sink.TopMispredicted) != len(hotRef) {
				t.Errorf("%s/%s: profile has %d rows, HotBranches %d",
					s, os.name, len(sink.TopMispredicted), len(hotRef))
			} else {
				for i, row := range sink.TopMispredicted {
					ref := hotRef[i]
					if row.PC != ref.PC || row.Mispredicts != ref.Mispredicts ||
						row.Executions != ref.Executions ||
						row.TakenRate != ref.TakenRate || row.MissShare != ref.MissShare {
						t.Errorf("%s/%s: profile row %d = %+v, HotBranches %+v",
							s, os.name, i, row, ref)
					}
				}
			}

			// Interpretive sink path: same sink type served by internal
			// observers must agree with the kernel field for field
			// (including the warmup-miss split the legacy observers lack).
			slowSink := &Telemetry{Interval: interval, TopK: topk}
			slowOpts := os.opts
			slowOpts.DisableFastpath = true
			slowOpts.Telemetry = slowSink
			if _, err := Run(buildKernelSpec(t, sp, snap), snap.Reader(), slowOpts); err != nil {
				t.Fatalf("%s/%s interpretive sink: %v", s, os.name, err)
			}
			if !reflect.DeepEqual(slowSink, sink) {
				t.Errorf("%s/%s: interpretive sink differs from kernel sink:\n got %+v\nwant %+v",
					s, os.name, slowSink, sink)
			}
		}
	}
}

// TestTelemetryKeepsFastpathEligible pins the headline contract: a run
// with a Telemetry sink still replays on the kernel (replay span
// fastpath=true) and the sink comes back populated.
func TestTelemetryKeepsFastpathEligible(t *testing.T) {
	snap := kernelSnapshot(8192)
	sp := spec.MustParse("PAg(BHT(512,4,10-sr),1xPHT(2^10,A2))")
	sink := &Telemetry{Interval: 256, TopK: 4}
	res, attr := replaySpanAttr(t, buildKernelSpec(t, sp, snap), snap, Options{Telemetry: sink})
	if attr != "true" {
		t.Fatalf("telemetry run: replay span fastpath=%q, want true", attr)
	}
	if len(sink.Samples) == 0 || len(sink.TopMispredicted) == 0 {
		t.Fatalf("kernel run left the sink unpopulated: %+v", sink)
	}
	var total uint64
	for _, s := range sink.Samples {
		total += s.Predictions
	}
	if total != res.Accuracy.Predictions {
		t.Errorf("interval samples cover %d predictions, result has %d",
			total, res.Accuracy.Predictions)
	}
	if last := sink.Samples[len(sink.Samples)-1]; last.Branches != res.Accuracy.Predictions {
		t.Errorf("last sample at branch %d, want %d", last.Branches, res.Accuracy.Predictions)
	}
}

// TestRunManyTelemetry drives a mixed batch — kernel cells, a forced
// interpretive cell and a pipelined cell — with per-cell Telemetry sinks
// and checks each against its serial Run twin.
func TestRunManyTelemetry(t *testing.T) {
	snap := kernelSnapshot(24_000)
	cells := []struct {
		spec string
		opts Options
	}{
		{"GAg(HR(1,,8-sr),1xPHT(2^8,A2))", Options{}},
		{"PAp(BHT(512,4,6-sr),512xPHT(2^6,A2))", Options{ContextSwitches: true, CSInterval: 1009, Shards: 4}},
		{"PAg(BHT(512,4,10-sr),1xPHT(2^10,A2))", Options{MaxCondBranches: 3000}},
		{"SAs(SHT(64,,8-sr),16xPHT(2^8,A2))", Options{DisableFastpath: true}},
		{"PAg(BHT(512,4,10-sr),1xPHT(2^10,A2))", Options{PipelineDepth: 4}},
	}
	var (
		preds = make([]predictor.Predictor, 0, len(cells))
		want  = make([]*Telemetry, 0, len(cells))
		opts  = make([]Options, 0, len(cells))
	)
	for _, c := range cells {
		sp := spec.MustParse(c.spec)
		serialSink := &Telemetry{Interval: 512, TopK: 4}
		serialOpts := c.opts
		serialOpts.Telemetry = serialSink
		if _, err := Run(buildKernelSpec(t, sp, snap), snap.Reader(), serialOpts); err != nil {
			t.Fatal(err)
		}
		want = append(want, serialSink)

		batchSink := &Telemetry{Interval: 512, TopK: 4}
		o := c.opts
		o.Telemetry = batchSink
		opts = append(opts, o)
		preds = append(preds, buildKernelSpec(t, sp, snap))
	}
	if _, err := RunMany(preds, snap.Reader(), opts); err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if !reflect.DeepEqual(opts[i].Telemetry, want[i]) {
			t.Errorf("cell %d (%s): batched sink differs from serial:\n got %+v\nwant %+v",
				i, cells[i].spec, opts[i].Telemetry, want[i])
		}
	}
}
