// Package sim drives branch predictors over trace event streams and
// collects prediction statistics — the "branch prediction simulator" of §4
// of the paper.
//
// The simulator predicts every conditional branch, verifies the prediction
// against the traced outcome, and updates the predictor. When context
// switches are enabled it flushes the predictor's per-branch state
// whenever a trap occurs in the trace, or every CSInterval instructions if
// no trap occurs (§5.1.4: 500,000 instructions ≈ a 10 ms quantum on a
// 50 MHz, 1-IPC machine).
package sim

import (
	"io"

	"twolevel/internal/predictor"
	"twolevel/internal/stats"
	"twolevel/internal/telemetry"
	"twolevel/internal/trace"
)

// DefaultCSInterval is the paper's context-switch quantum in instructions.
const DefaultCSInterval = 500_000

// Options configures a simulation run.
type Options struct {
	// ContextSwitches enables context-switch injection (the ",c" flag
	// of the naming convention).
	ContextSwitches bool
	// CSInterval overrides the instruction quantum (default 500,000).
	CSInterval uint64
	// MaxCondBranches stops the run after this many conditional
	// branches (0 = drain the source).
	MaxCondBranches uint64
	// PipelineDepth, when > 0, models the §3.1 pipeline: a branch
	// resolves (updates the predictor) only after PipelineDepth further
	// conditional branches have been predicted. On a misprediction the
	// in-flight younger branches are squashed and re-predicted, as a
	// refetched pipeline would. Depth 0 resolves every branch before
	// the next prediction (the paper's base model).
	PipelineDepth int
	// Observer, when non-nil, receives telemetry callbacks for every
	// prediction, resolution, trap and context switch, bracketed by
	// Start/Finish. A nil observer adds no allocations and no
	// measurable work to the hot loop.
	Observer telemetry.Observer
}

// Result aggregates a simulation run.
type Result struct {
	// Accuracy counts conditional branch predictions.
	Accuracy stats.Accuracy
	// ByClass counts dynamic branches per class.
	ByClass [trace.NumClasses]uint64
	// Instructions is the total instruction count replayed.
	Instructions uint64
	// Traps is the number of trap events seen.
	Traps uint64
	// ContextSwitches is the number of switches injected.
	ContextSwitches uint64
	// TakenCond counts taken conditional branches.
	TakenCond uint64
	// Repredictions counts squashed-and-repredicted branches in
	// pipelined mode (always 0 at depth 0).
	Repredictions uint64
	// TargetPredictions and TargetCorrect measure target-address
	// caching (§3.2) for predictors implementing
	// predictor.TargetPredictor: among conditional branches that were
	// predicted taken and were taken, how often the cached target
	// matched the actual target.
	TargetPredictions uint64
	TargetCorrect     uint64
}

// TargetRate returns the fraction of correctly supplied target addresses,
// or 0 when the predictor caches no targets.
func (r Result) TargetRate() float64 {
	if r.TargetPredictions == 0 {
		return 0
	}
	return float64(r.TargetCorrect) / float64(r.TargetPredictions)
}

// measureTarget folds one §3.2 target-cache measurement into res.
func measureTarget(res *Result, tp predictor.TargetPredictor, b trace.Branch, predictedTaken bool) {
	if tp == nil || !predictedTaken || !b.Taken {
		return
	}
	res.TargetPredictions++
	if t, ok := tp.PredictTarget(b.PC); ok && t == b.Target {
		res.TargetCorrect++
	}
}

// Run simulates p over src.
func Run(p predictor.Predictor, src trace.Source, opts Options) (Result, error) {
	if obs := opts.Observer; obs != nil {
		obs.Start(telemetry.RunInfo{Predictor: p})
		defer obs.Finish()
	}
	if opts.PipelineDepth > 0 {
		return runPipelined(p, src, opts)
	}
	return runSerial(p, src, opts)
}

// runSerial is the paper's base model: every branch resolves before the
// next prediction.
func runSerial(p predictor.Predictor, src trace.Source, opts Options) (Result, error) {
	var res Result
	obs := opts.Observer
	tp, _ := p.(predictor.TargetPredictor)
	if tp != nil && !tp.CachesTargets() {
		tp = nil
	}
	interval := opts.CSInterval
	if interval == 0 {
		interval = DefaultCSInterval
	}
	var sinceCS uint64
	for {
		if opts.MaxCondBranches > 0 && res.Accuracy.Predictions >= opts.MaxCondBranches {
			return res, nil
		}
		e, err := src.Next()
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			return res, err
		}
		res.Instructions += uint64(e.Instrs)
		sinceCS += uint64(e.Instrs)
		if e.Trap {
			res.Traps++
			if obs != nil {
				obs.OnTrap()
			}
			if opts.ContextSwitches {
				p.ContextSwitch()
				res.ContextSwitches++
				sinceCS = 0
				if obs != nil {
					obs.OnContextSwitch()
				}
			}
			continue
		}
		if opts.ContextSwitches && sinceCS >= interval {
			p.ContextSwitch()
			res.ContextSwitches++
			sinceCS = 0
			if obs != nil {
				obs.OnContextSwitch()
			}
		}
		b := e.Branch
		res.ByClass[b.Class]++
		if b.Class != trace.Cond {
			continue
		}
		if b.Taken {
			res.TakenCond++
		}
		outcome := b.Taken
		b.Taken = false // the predictor must not see the outcome
		pred := p.Predict(b)
		if obs != nil {
			obs.OnPredict(b, pred)
		}
		b.Taken = outcome
		res.Accuracy.Add(pred == outcome)
		measureTarget(&res, tp, b, pred)
		p.Update(b, pred)
		if obs != nil {
			obs.OnResolve(b, pred, pred == outcome)
		}
	}
}

// inflight is one unresolved branch in the pipelined model.
type inflight struct {
	branch trace.Branch
	pred   bool
}

// runPipelined implements the §3.1 timing model: predictions are made with
// predictor state that has not yet seen the outcomes of the previous
// PipelineDepth branches. Accuracy is charged at resolution time against
// the prediction in flight; a misprediction squashes and re-predicts the
// younger in-flight branches (they would be refetched down the correct
// path).
func runPipelined(p predictor.Predictor, src trace.Source, opts Options) (Result, error) {
	var res Result
	obs := opts.Observer
	interval := opts.CSInterval
	if interval == 0 {
		interval = DefaultCSInterval
	}
	var sinceCS uint64
	queue := make([]inflight, 0, opts.PipelineDepth+1)

	predict := func(b trace.Branch) bool {
		outcome := b.Taken
		b.Taken = false
		pred := p.Predict(b)
		if obs != nil {
			obs.OnPredict(b, pred)
		}
		b.Taken = outcome
		return pred
	}
	// resolve retires the oldest in-flight branch.
	resolve := func() {
		f := queue[0]
		queue = queue[1:]
		correct := f.pred == f.branch.Taken
		res.Accuracy.Add(correct)
		p.Update(f.branch, f.pred)
		if obs != nil {
			obs.OnResolve(f.branch, f.pred, correct)
		}
		if !correct {
			// Squash: younger in-flight branches are refetched and
			// re-predicted with the repaired predictor state.
			for i := range queue {
				queue[i].pred = predict(queue[i].branch)
				res.Repredictions++
			}
		}
	}
	drain := func() {
		for len(queue) > 0 {
			resolve()
		}
	}

	for {
		if opts.MaxCondBranches > 0 && res.Accuracy.Predictions >= opts.MaxCondBranches {
			break
		}
		e, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return res, err
		}
		res.Instructions += uint64(e.Instrs)
		sinceCS += uint64(e.Instrs)
		if e.Trap {
			res.Traps++
			if obs != nil {
				obs.OnTrap()
			}
			if opts.ContextSwitches {
				drain()
				p.ContextSwitch()
				res.ContextSwitches++
				sinceCS = 0
				if obs != nil {
					obs.OnContextSwitch()
				}
			}
			continue
		}
		if opts.ContextSwitches && sinceCS >= interval {
			drain()
			p.ContextSwitch()
			res.ContextSwitches++
			sinceCS = 0
			if obs != nil {
				obs.OnContextSwitch()
			}
		}
		b := e.Branch
		res.ByClass[b.Class]++
		if b.Class != trace.Cond {
			continue
		}
		if b.Taken {
			res.TakenCond++
		}
		queue = append(queue, inflight{branch: b, pred: predict(b)})
		if len(queue) > opts.PipelineDepth {
			resolve()
		}
	}
	drain()
	return res, nil
}
