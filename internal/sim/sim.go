// Package sim drives branch predictors over trace event streams and
// collects prediction statistics — the "branch prediction simulator" of §4
// of the paper.
//
// The simulator predicts every conditional branch, verifies the prediction
// against the traced outcome, and updates the predictor. When context
// switches are enabled it flushes the predictor's per-branch state
// whenever a trap occurs in the trace, or every CSInterval instructions if
// no trap occurs (§5.1.4: 500,000 instructions ≈ a 10 ms quantum on a
// 50 MHz, 1-IPC machine).
package sim

import (
	"context"
	"io"

	"twolevel/internal/predictor"
	"twolevel/internal/sim/fastpath"
	"twolevel/internal/span"
	"twolevel/internal/stats"
	"twolevel/internal/telemetry"
	"twolevel/internal/trace"
)

// DefaultCSInterval is the paper's context-switch quantum in instructions.
const DefaultCSInterval = 500_000

// cancelCheckInterval is how many trace events pass between cancellation
// polls when a run carries a Context. Checks are amortised so the
// nil-context hot path pays one predictable branch per event and a
// cancelled run is noticed within a few thousand events (microseconds at
// replay speed), never mid-event.
const cancelCheckInterval = 4096

// Options configures a simulation run.
type Options struct {
	// ContextSwitches enables context-switch injection (the ",c" flag
	// of the naming convention).
	ContextSwitches bool
	// CSInterval overrides the instruction quantum (default 500,000).
	CSInterval uint64
	// MaxCondBranches stops the run after this many conditional
	// branches (0 = drain the source).
	MaxCondBranches uint64
	// PipelineDepth, when > 0, models the §3.1 pipeline: a branch
	// resolves (updates the predictor) only after PipelineDepth further
	// conditional branches have been predicted. On a misprediction the
	// in-flight younger branches are squashed and re-predicted, as a
	// refetched pipeline would. Depth 0 resolves every branch before
	// the next prediction (the paper's base model).
	PipelineDepth int
	// Observer, when non-nil, receives telemetry callbacks for every
	// prediction, resolution, trap and context switch, bracketed by
	// Start/Finish. A nil observer adds no allocations and no
	// measurable work to the hot loop.
	Observer telemetry.Observer
	// Context, when non-nil, bounds the run: Run and RunMany poll it
	// every few thousand events and return ctx.Err() (with the partial
	// result collected so far) once it is cancelled or past its
	// deadline. A nil Context adds no measurable work to the hot loop.
	Context context.Context
	// Span, when non-nil, is the parent span the run attributes its
	// latency under: Run opens one "replay" child covering the whole
	// pass (RunMany opens one per shared pass, tagged with the batch
	// size). A nil Span adds no allocations and no work — the same
	// zero-cost-when-nil contract the Observer field carries, enforced
	// by the spannilguard analyzer and an allocation test.
	Span *span.Span
	// DisableFastpath forces the interpretive runner even when the flat
	// replay kernel (internal/sim/fastpath) could serve the run.
	// Equivalence tests and kernel-vs-runner benchmarks use it to pin
	// the path; results are bit-identical either way.
	DisableFastpath bool
	// Shards requests PC-partitioned parallel replay inside the fast
	// kernel for per-address/per-set schemes (values < 2, or schemes
	// with any global level, replay serially). The merged Result is
	// bit-identical to the serial kernel. Ignored on the interpretive
	// path.
	Shards int
	// Telemetry, when non-nil, requests the kernel-native interval
	// accuracy series and per-PC mispredict profile. Unlike Observer it
	// does not cost fastpath eligibility: the flat kernel accumulates
	// the counters in its hot loops, and the interpretive runner serves
	// the same sink (bit-identically) through internal observers when
	// the kernel declines the run. Outputs land in the sink when the
	// run returns; a sink is single-use.
	Telemetry *Telemetry
}

// Result aggregates a simulation run.
type Result struct {
	// Accuracy counts conditional branch predictions.
	Accuracy stats.Accuracy
	// ByClass counts dynamic branches per class.
	ByClass [trace.NumClasses]uint64
	// Instructions is the total instruction count replayed.
	Instructions uint64
	// Traps is the number of trap events seen.
	Traps uint64
	// ContextSwitches is the number of switches injected.
	ContextSwitches uint64
	// TakenCond counts taken conditional branches.
	TakenCond uint64
	// Repredictions counts squashed-and-repredicted branches in
	// pipelined mode (always 0 at depth 0).
	Repredictions uint64
	// TargetPredictions and TargetCorrect measure target-address
	// caching (§3.2) for predictors implementing
	// predictor.TargetPredictor: among conditional branches that were
	// predicted taken and were taken, how often the cached target
	// matched the actual target.
	TargetPredictions uint64
	TargetCorrect     uint64
}

// TargetRate returns the fraction of correctly supplied target addresses,
// or 0 when the predictor caches no targets.
func (r Result) TargetRate() float64 {
	if r.TargetPredictions == 0 {
		return 0
	}
	return float64(r.TargetCorrect) / float64(r.TargetPredictions)
}

// measureTarget folds one §3.2 target-cache measurement into res.
func measureTarget(res *Result, tp predictor.TargetPredictor, b trace.Branch, predictedTaken bool) {
	if tp == nil || !predictedTaken || !b.Taken {
		return
	}
	res.TargetPredictions++
	if t, ok := tp.PredictTarget(b.PC); ok && t == b.Target {
		res.TargetCorrect++
	}
}

// Run simulates p over src. A cancelled opts.Context aborts the run with
// ctx.Err() and the partial result collected so far.
func Run(p predictor.Predictor, src trace.Source, opts Options) (Result, error) {
	var k *fastpath.Kernel
	var sr *trace.SnapshotReader
	if FastpathEligible(p, src, opts) {
		sr, _ = src.(*trace.SnapshotReader)
		k, _ = fastpath.New(p, fastpathConfig(opts))
	}
	if k == nil {
		// The kernel declined (or was never eligible): a Telemetry sink
		// is served by internal observers harvested after Finish.
		var harvest func()
		if opts, harvest = attachTelemetry(opts); harvest != nil {
			defer harvest()
		}
	}
	if obs := opts.Observer; obs != nil {
		obs.Start(telemetry.RunInfo{Predictor: p})
		defer obs.Finish()
	}
	if parent := opts.Span; parent != nil {
		sp := parent.Child("replay",
			span.Uint64("budget", opts.MaxCondBranches),
			span.Bool("fastpath", k != nil))
		defer sp.End()
	}
	if k != nil {
		start := sr.Pos()
		c, consumed, err := k.Run(sr.Snapshot(), start)
		sr.Seek(start + consumed)
		opts.Telemetry.fillFromKernel(k.Telemetry())
		return countersToResult(c), err
	}
	r := newRunner(p, opts)
	ctx := opts.Context
	var sinceCheck uint32
	for r.ready() {
		if ctx != nil {
			if sinceCheck++; sinceCheck >= cancelCheckInterval {
				sinceCheck = 0
				if err := ctx.Err(); err != nil {
					return r.res, err
				}
			}
		}
		e, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return r.res, err
		}
		r.step(e)
	}
	r.finish()
	return r.res, nil
}

// inflight is one unresolved branch in the pipelined model.
type inflight struct {
	branch trace.Branch
	pred   bool
}

// runner is the per-predictor simulation state machine. Run drives one
// down a private source; RunMany drives many down a single shared pass.
// Both paths execute exactly this code, so a batched replay is
// bit-identical to the serial run by construction.
//
// Depth 0 is the paper's base model: every branch resolves before the
// next prediction. Depth > 0 is the §3.1 timing model: predictions are
// made with predictor state that has not yet seen the outcomes of the
// previous PipelineDepth branches; accuracy is charged at resolution time
// against the prediction in flight, and a misprediction squashes and
// re-predicts the younger in-flight branches (they would be refetched
// down the correct path).
type runner struct {
	p        predictor.Predictor
	obs      telemetry.Observer
	tp       predictor.TargetPredictor
	max      uint64
	cs       bool
	interval uint64
	depth    int
	sinceCS  uint64
	// queue is a fixed-capacity ring buffer of the depth+1 possible
	// in-flight branches. Head advances on resolve instead of reslicing
	// (queue = queue[1:]) — the reslice walked the backing array off its
	// end, forcing a fresh allocation every depth+1 branches for the
	// whole run.
	queue []inflight
	qhead int
	qlen  int
	res   Result
	done  bool
}

// newRunner returns the runner by value so Run can keep it on the stack
// (the nil-observer hot path must not allocate).
func newRunner(p predictor.Predictor, opts Options) runner {
	r := runner{
		p:        p,
		obs:      opts.Observer,
		max:      opts.MaxCondBranches,
		cs:       opts.ContextSwitches,
		interval: opts.CSInterval,
		depth:    opts.PipelineDepth,
	}
	if r.interval == 0 {
		r.interval = DefaultCSInterval
	}
	if r.depth > 0 {
		r.queue = make([]inflight, r.depth+1)
	} else {
		// Target-address caching (§3.2) is measured in the base model
		// only, as before the pipelined mode existed.
		if tp, _ := p.(predictor.TargetPredictor); tp != nil && tp.CachesTargets() {
			r.tp = tp
		}
	}
	return r
}

// ready reports whether the runner still wants events. When the branch
// budget has been reached it retires the in-flight queue and marks the
// runner done — the top-of-loop budget check of the serial simulator.
func (r *runner) ready() bool {
	if r.done {
		return false
	}
	if r.max > 0 && r.res.Accuracy.Predictions >= r.max {
		r.drain()
		r.done = true
		return false
	}
	return true
}

// step consumes one trace event.
func (r *runner) step(e trace.Event) {
	r.res.Instructions += uint64(e.Instrs)
	r.sinceCS += uint64(e.Instrs)
	if e.Trap {
		r.res.Traps++
		if r.obs != nil {
			r.obs.OnTrap()
		}
		if r.cs {
			r.contextSwitch()
		}
		return
	}
	if r.cs && r.sinceCS >= r.interval {
		r.contextSwitch()
	}
	b := e.Branch
	r.res.ByClass[b.Class]++
	if b.Class != trace.Cond {
		return
	}
	if b.Taken {
		r.res.TakenCond++
	}
	if r.depth > 0 {
		slot := r.qhead + r.qlen
		if slot >= len(r.queue) {
			slot -= len(r.queue)
		}
		r.queue[slot] = inflight{branch: b, pred: r.predict(b)}
		r.qlen++
		if r.qlen > r.depth {
			r.resolve()
		}
		return
	}
	outcome := b.Taken
	pred := r.predict(b)
	r.res.Accuracy.Add(pred == outcome)
	measureTarget(&r.res, r.tp, b, pred)
	r.p.Update(b, pred)
	if r.obs != nil {
		r.obs.OnResolve(b, pred, pred == outcome)
	}
}

// contextSwitch drains the pipeline and flushes the predictor.
func (r *runner) contextSwitch() {
	if r.depth > 0 {
		r.drain()
	}
	r.p.ContextSwitch()
	r.res.ContextSwitches++
	r.sinceCS = 0
	if r.obs != nil {
		r.obs.OnContextSwitch()
	}
}

// predict asks the predictor about b with the outcome masked.
func (r *runner) predict(b trace.Branch) bool {
	b.Taken = false // the predictor must not see the outcome
	pred := r.p.Predict(b)
	if r.obs != nil {
		r.obs.OnPredict(b, pred)
	}
	return pred
}

// resolve retires the oldest in-flight branch.
func (r *runner) resolve() {
	f := r.queue[r.qhead]
	if r.qhead++; r.qhead == len(r.queue) {
		r.qhead = 0
	}
	r.qlen--
	correct := f.pred == f.branch.Taken
	r.res.Accuracy.Add(correct)
	r.p.Update(f.branch, f.pred)
	if r.obs != nil {
		r.obs.OnResolve(f.branch, f.pred, correct)
	}
	if !correct {
		// Squash: younger in-flight branches are refetched and
		// re-predicted with the repaired predictor state.
		for j, i := 0, r.qhead; j < r.qlen; j++ {
			r.queue[i].pred = r.predict(r.queue[i].branch)
			r.res.Repredictions++
			if i++; i == len(r.queue) {
				i = 0
			}
		}
	}
}

// drain retires every in-flight branch.
func (r *runner) drain() {
	for r.qlen > 0 {
		r.resolve()
	}
}

// finish retires in-flight state at end of stream.
func (r *runner) finish() {
	if !r.done {
		r.drain()
		r.done = true
	}
}
