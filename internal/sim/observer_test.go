package sim

import (
	"reflect"
	"testing"

	"twolevel/internal/automaton"
	"twolevel/internal/predictor"
	"twolevel/internal/telemetry"
	"twolevel/internal/trace"
)

// observerTrace builds a deterministic in-memory trace: a handful of
// static conditional branches with mixed outcomes plus periodic traps.
func observerTrace(events int) *trace.Trace {
	tr := &trace.Trace{}
	for i := 0; i < events; i++ {
		if i%97 == 96 {
			tr.Append(trace.Event{Instrs: 3, Trap: true})
			continue
		}
		pc := uint32(0x1000 + 4*(i%13))
		tr.Append(trace.Event{Instrs: 5, Branch: trace.Branch{
			PC:     pc,
			Target: pc - 64,
			Class:  trace.Cond,
			Taken:  (i/(1+i%3))%2 == 0,
		}})
	}
	return tr
}

func observerTestPredictor(t testing.TB) *predictor.TwoLevel {
	t.Helper()
	p, err := predictor.NewTwoLevel(predictor.TwoLevelConfig{
		Variation: predictor.PAg, HistoryBits: 8, Automaton: automaton.A2,
		Entries: 64, Assoc: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestNilObserverAllocationFree proves the nil-observer path in the sim
// hot loop allocates nothing: attaching telemetry must stay free until an
// observer is actually supplied.
func TestNilObserverAllocationFree(t *testing.T) {
	tr := observerTrace(4096)
	p := observerTestPredictor(t)
	rd := tr.Reader()
	// Warm-up pass: BHT entries and history registers for every static
	// branch are allocated on first touch and persist across runs.
	if _, err := Run(p, rd, Options{ContextSwitches: true, CSInterval: 100}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		rd.Reset()
		if _, err := Run(p, rd, Options{ContextSwitches: true, CSInterval: 100}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("nil-observer sim.Run allocated %.1f times per run, want 0", allocs)
	}
}

// countingObserver records every callback for the threading tests.
type countingObserver struct {
	starts, finishes             int
	predicts, resolves, corrects int
	traps, switches              int
	sawOutcomeInPredict          bool
	info                         telemetry.RunInfo
}

func (c *countingObserver) Start(info telemetry.RunInfo) { c.starts++; c.info = info }
func (c *countingObserver) OnPredict(b trace.Branch, predicted bool) {
	c.predicts++
	if b.Taken {
		c.sawOutcomeInPredict = true
	}
}
func (c *countingObserver) OnResolve(b trace.Branch, predicted, correct bool) {
	c.resolves++
	if correct {
		c.corrects++
	}
}
func (c *countingObserver) OnContextSwitch() { c.switches++ }
func (c *countingObserver) OnTrap()          { c.traps++ }
func (c *countingObserver) Finish()          { c.finishes++ }

func TestObserverThreadedThroughSerialRun(t *testing.T) {
	tr := observerTrace(2000)
	p := observerTestPredictor(t)
	obs := &countingObserver{}
	res, err := Run(p, tr.Reader(), Options{
		ContextSwitches: true, CSInterval: 100, Observer: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if obs.starts != 1 || obs.finishes != 1 {
		t.Errorf("start/finish = %d/%d, want 1/1", obs.starts, obs.finishes)
	}
	if obs.info.Predictor != predictor.Predictor(p) {
		t.Error("RunInfo.Predictor not threaded")
	}
	if uint64(obs.predicts) != res.Accuracy.Predictions || uint64(obs.resolves) != res.Accuracy.Predictions {
		t.Errorf("predicts/resolves = %d/%d, want %d", obs.predicts, obs.resolves, res.Accuracy.Predictions)
	}
	if uint64(obs.corrects) != res.Accuracy.Correct {
		t.Errorf("correct resolutions = %d, want %d", obs.corrects, res.Accuracy.Correct)
	}
	if uint64(obs.traps) != res.Traps || uint64(obs.switches) != res.ContextSwitches {
		t.Errorf("traps/switches = %d/%d, want %d/%d", obs.traps, obs.switches, res.Traps, res.ContextSwitches)
	}
	if res.Traps == 0 || res.ContextSwitches == 0 {
		t.Fatal("test trace produced no traps/switches; observer paths unexercised")
	}
	if obs.sawOutcomeInPredict {
		t.Error("OnPredict leaked the branch outcome (b.Taken set)")
	}
}

func TestObserverThreadedThroughPipelinedRun(t *testing.T) {
	tr := observerTrace(2000)
	p := observerTestPredictor(t)
	obs := &countingObserver{}
	res, err := Run(p, tr.Reader(), Options{PipelineDepth: 4, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if obs.starts != 1 || obs.finishes != 1 {
		t.Errorf("start/finish = %d/%d, want 1/1", obs.starts, obs.finishes)
	}
	if uint64(obs.resolves) != res.Accuracy.Predictions {
		t.Errorf("resolves = %d, want %d", obs.resolves, res.Accuracy.Predictions)
	}
	// Squashed re-predictions are reported as predictions too.
	want := res.Accuracy.Predictions + res.Repredictions
	if uint64(obs.predicts) != want {
		t.Errorf("predicts = %d, want %d (incl. %d repredictions)", obs.predicts, want, res.Repredictions)
	}
	if res.Repredictions == 0 {
		t.Fatal("pipelined run squashed nothing; reprediction path unexercised")
	}
}

func TestMultiplexNotifiesObserver(t *testing.T) {
	a, b := observerTrace(3000), observerTrace(3000)
	mux, err := NewMultiplex([]trace.Source{a.Reader(), b.Reader()}, 200)
	if err != nil {
		t.Fatal(err)
	}
	obs := &countingObserver{}
	mux.Observer = obs
	p := observerTestPredictor(t)
	if _, err := Run(p, mux, Options{Observer: obs}); err != nil {
		t.Fatal(err)
	}
	if obs.switches == 0 || uint64(obs.switches) != mux.Switches {
		t.Errorf("observer switches = %d, multiplexer counted %d", obs.switches, mux.Switches)
	}
	// Each multiplexer switch is surfaced to the simulator as a trap, on
	// top of the trap events already present in the source traces.
	if obs.traps < obs.switches {
		t.Errorf("traps = %d < switches = %d; every switch should emit a trap", obs.traps, obs.switches)
	}
}

// TestIntervalSeriesThroughBatchedReplay threads per-predictor
// IntervalSeries observers through one RunMany pass with branch budgets
// NOT divisible by the sampling interval, and checks that each series
// ends in the correct partial sample — and is bit-identical to the same
// predictor run serially over its own copy of the stream.
func TestIntervalSeriesThroughBatchedReplay(t *testing.T) {
	tr := observerTrace(4000)
	const interval = 100
	budgets := []uint64{250, 330} // 2 full + partial 50, 3 full + partial 30
	preds := make([]predictor.Predictor, len(budgets))
	series := make([]*telemetry.IntervalSeries, len(budgets))
	opts := make([]Options, len(budgets))
	for i, budget := range budgets {
		preds[i] = observerTestPredictor(t)
		series[i] = telemetry.NewIntervalSeries(interval)
		opts[i] = Options{MaxCondBranches: budget, Observer: series[i]}
	}
	results, err := RunMany(preds, tr.Reader(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, budget := range budgets {
		samples := series[i].Samples()
		wantN := int(budget/interval) + 1
		if len(samples) != wantN {
			t.Fatalf("budget %d: %d samples, want %d (full intervals + final partial)", budget, len(samples), wantN)
		}
		last := samples[len(samples)-1]
		if last.Branches != budget || last.Predictions != budget%interval {
			t.Errorf("budget %d: final partial sample = %+v, want %d branches over a %d-wide interval",
				budget, last, budget, budget%interval)
		}
		if results[i].Accuracy.Predictions != budget {
			t.Errorf("budget %d: run resolved %d branches", budget, results[i].Accuracy.Predictions)
		}

		// The batched pass must produce the exact series a serial run does.
		serial := telemetry.NewIntervalSeries(interval)
		if _, err := Run(observerTestPredictor(t), tr.Reader(), Options{
			MaxCondBranches: budget, Observer: serial,
		}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(samples, serial.Samples()) {
			t.Errorf("budget %d: batched series diverges from serial:\n%v\n%v",
				budget, samples, serial.Samples())
		}
	}
}

// TestRunStatsEndToEnd drives the RunStats observer through a real run and
// checks occupancy via the predictor.Inspector interface.
func TestRunStatsEndToEnd(t *testing.T) {
	tr := observerTrace(3000)
	p := observerTestPredictor(t)
	rs := telemetry.NewRunStats()
	res, err := Run(p, tr.Reader(), Options{Observer: rs})
	if err != nil {
		t.Fatal(err)
	}
	m := rs.Metrics()
	if m.Resolutions != res.Accuracy.Predictions {
		t.Errorf("resolutions = %d, want %d", m.Resolutions, res.Accuracy.Predictions)
	}
	if m.Mispredictions != res.Accuracy.Predictions-res.Accuracy.Correct {
		t.Errorf("mispredictions = %d", m.Mispredictions)
	}
	if m.WallClockSeconds <= 0 || m.EventsPerSec <= 0 {
		t.Errorf("throughput not measured: %+v", m)
	}
	if m.Occupancy == nil {
		t.Fatal("TwoLevel implements Inspector; occupancy must be reported")
	}
	occ := m.Occupancy
	if occ.BHTCapacity != 64 || occ.BHTTouched != 13 {
		t.Errorf("BHT occupancy = %d/%d, want 13/64", occ.BHTTouched, occ.BHTCapacity)
	}
	if occ.PHTTables != 1 || occ.PHTEntriesPerTable != 256 {
		t.Errorf("PHT shape = %d tables x %d, want 1 x 256", occ.PHTTables, occ.PHTEntriesPerTable)
	}
	if occ.PHTTouched == 0 || occ.PHTTouched > 256 {
		t.Errorf("PHT touched = %d out of range", occ.PHTTouched)
	}
}
