// Fast-path dispatch: Run and RunMany transparently swap the interpretive
// runner for the flat replay kernel (internal/sim/fastpath) when a cell
// qualifies. Eligibility is deliberately conservative — the kernel only
// serves runs whose observable behaviour it reproduces bit for bit.
package sim

import (
	"twolevel/internal/predictor"
	"twolevel/internal/sim/fastpath"
	"twolevel/internal/stats"
	"twolevel/internal/trace"
)

// FastpathEligible reports whether Run would hand (p, src, opts) to the
// flat replay kernel instead of the interpretive runner. The kernel
// requires:
//
//   - a packed source (*trace.SnapshotReader) — the kernel indexes the
//     snapshot's SoA columns directly instead of decoding events;
//   - the depth-0 base model — the pipelined timing model interleaves
//     predict and update in ways flat tables do not express;
//   - no Observer — per-event callbacks would reintroduce the interface
//     calls the kernel exists to remove (a Telemetry sink does NOT cost
//     eligibility: the kernel accumulates it natively);
//   - a predictor whose state flattens (fastpath.Supported): the static
//     schemes, or a two-level predictor without speculative history.
//
// Even when eligible, kernel construction can still decline
// (fastpath.New), in which case the interpretive runner serves the run.
func FastpathEligible(p predictor.Predictor, src trace.Source, opts Options) bool {
	if opts.DisableFastpath || opts.PipelineDepth > 0 || opts.Observer != nil {
		return false
	}
	if _, ok := src.(*trace.SnapshotReader); !ok {
		return false
	}
	return fastpath.Supported(p)
}

// fastpathConfig translates Options for the kernel, resolving the
// context-switch quantum default the runner would apply.
func fastpathConfig(opts Options) fastpath.Config {
	interval := opts.CSInterval
	if interval == 0 {
		interval = DefaultCSInterval
	}
	cfg := fastpath.Config{
		ContextSwitches: opts.ContextSwitches,
		CSInterval:      interval,
		MaxCondBranches: opts.MaxCondBranches,
		Context:         opts.Context,
		Shards:          opts.Shards,
	}
	if t := opts.Telemetry; t != nil {
		cfg.Interval = t.Interval
		cfg.TopPCs = t.TopK
		if t.TopK > 0 {
			cfg.Warmup = warmupBoundary(opts.MaxCondBranches)
		}
	}
	return cfg
}

// countersToResult converts kernel counters to the public Result. The
// kernel never repredicts (depth 0 only), so Repredictions stays 0.
func countersToResult(c fastpath.Counters) Result {
	return Result{
		Accuracy:          stats.Accuracy{Predictions: c.Predictions, Correct: c.Correct},
		ByClass:           c.ByClass,
		Instructions:      c.Instructions,
		Traps:             c.Traps,
		ContextSwitches:   c.ContextSwitches,
		TakenCond:         c.TakenCond,
		TargetPredictions: c.TargetPredictions,
		TargetCorrect:     c.TargetCorrect,
	}
}
