package sim

import (
	"context"
	"errors"
	"testing"

	"twolevel/internal/predictor"
	"twolevel/internal/trace"
)

// endlessSource yields alternating conditional branches forever — a
// stand-in for an unbounded interpreter stream that only a budget or a
// cancelled context can stop.
type endlessSource struct {
	n uint64
}

func (s *endlessSource) Next() (trace.Event, error) {
	s.n++
	return condEvent(0x200, s.n%2 == 0, 5), nil
}

func TestRunHonoursCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := &endlessSource{}
	res, err := Run(pagA2(6), src, Options{Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The poll is amortised: the run must stop within one check interval.
	if src.n > 2*cancelCheckInterval {
		t.Fatalf("run consumed %d events after cancellation", src.n)
	}
	if res.Accuracy.Predictions == 0 {
		t.Fatal("cancelled run should return the partial result collected so far")
	}
}

func TestRunCancelMidStream(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &endlessSource{}
	done := make(chan struct{})
	var res Result
	var err error
	go func() {
		defer close(done)
		res, err = Run(pagA2(6), src, Options{Context: ctx})
	}()
	cancel()
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Accuracy.Predictions > src.n {
		t.Fatalf("partial result claims %d predictions from %d events", res.Accuracy.Predictions, src.n)
	}
}

func TestRunNilContextUnaffected(t *testing.T) {
	tr := alternatingTrace(0x100, 500)
	want, err := Run(pagA2(6), tr.Reader(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(pagA2(6), tr.Reader(), Options{Context: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("background-context run differs from nil-context run:\n%+v\n%+v", got, want)
	}
}

func TestRunDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 1)
	defer cancel()
	<-ctx.Done()
	_, err := Run(pagA2(6), &endlessSource{}, Options{Context: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunManyHonoursCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	src := &endlessSource{}
	// Only one of the two option sets carries the context: the pass is
	// shared, so cancellation aborts the whole batch.
	preds := []predictor.Predictor{pagA2(6), pagA2(8)}
	opts := []Options{{Context: ctx}, {}}
	results, err := RunMany(preds, src, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != len(preds) {
		t.Fatalf("got %d partial results, want %d", len(results), len(preds))
	}
	if src.n > 2*cancelCheckInterval {
		t.Fatalf("batch consumed %d events after cancellation", src.n)
	}
}

func TestRunManyMatchesSerialWithContext(t *testing.T) {
	ctx := context.Background()
	events := alternatingTrace(0x300, 3000)
	preds := []predictor.Predictor{pagA2(4), pagA2(10)}
	opts := []Options{{Context: ctx}, {Context: ctx}}
	batched, err := RunMany(preds, events.Reader(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range []int{4, 10} {
		serial, err := Run(pagA2(k), events.Reader(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if batched[i] != serial {
			t.Fatalf("predictor %d: batched run with live context differs from serial run", i)
		}
	}
}
