// Benchmarks regenerating every table and figure of the paper's
// evaluation section, plus throughput benchmarks of the predictors and
// the trace substrate.
//
// Each experiment benchmark runs its table/figure at a reduced
// per-benchmark branch budget (the BRANCH_BUDGET environment variable
// overrides it; the paper used 20M per benchmark) and reports the
// headline numbers as benchmark metrics: accuracy metrics are fractions
// (0..1) named after the figure's series.
//
//	go test -bench=Figure -benchmem            # all figures
//	BRANCH_BUDGET=1000000 go test -bench=Figure11   # higher fidelity
package twolevel_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"twolevel"
)

// benchBudget returns the per-benchmark conditional branch budget for
// experiment benchmarks.
func benchBudget() uint64 {
	if s := os.Getenv("BRANCH_BUDGET"); s != "" {
		if n, err := strconv.ParseUint(s, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return 30_000
}

// runExperiment runs one experiment per benchmark iteration and reports
// the named series' total geometric means as metrics.
func runExperiment(b *testing.B, id string, metrics map[string]string) {
	opts := twolevel.ExperimentOptions{CondBranches: benchBudget()}
	var report *twolevel.Report
	for i := 0; i < b.N; i++ {
		var err error
		report, err = twolevel.RunExperiment(id, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for series, metric := range metrics {
		v := report.Value(series, "Tot GMean")
		b.ReportMetric(v, metric)
	}
}

func BenchmarkTable1_StaticBranchCounts(b *testing.B) {
	opts := twolevel.ExperimentOptions{CondBranches: benchBudget()}
	var report *twolevel.Report
	for i := 0; i < b.N; i++ {
		var err error
		report, err = twolevel.RunExperiment("table1", opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(report.Value("gcc", "measured"), "gcc-static-cond")
	b.ReportMetric(report.Value("eqntott", "measured"), "eqntott-static-cond")
}

func BenchmarkTable2_DataSets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := twolevel.RunExperiment("table2", twolevel.ExperimentOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_Configurations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := twolevel.RunExperiment("table3", twolevel.ExperimentOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4_BranchClassMix(b *testing.B) {
	opts := twolevel.ExperimentOptions{CondBranches: benchBudget()}
	var report *twolevel.Report
	for i := 0; i < b.N; i++ {
		var err error
		report, err = twolevel.RunExperiment("fig4", opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(report.Value("gcc", "conditional"), "gcc-cond-share")
}

func BenchmarkFigure5_Automata(b *testing.B) {
	runExperiment(b, "fig5", map[string]string{
		"PAg(BHT(512,4,12-sr),1xPHT(2^12,A2))": "A2-gmean",
		"PAg(BHT(512,4,12-sr),1xPHT(2^12,LT))": "LT-gmean",
	})
}

func BenchmarkFigure6_SchemesEqualHistory(b *testing.B) {
	runExperiment(b, "fig6", map[string]string{
		"GAg(6)": "GAg6-gmean",
		"PAg(6)": "PAg6-gmean",
		"PAp(6)": "PAp6-gmean",
	})
}

func BenchmarkFigure7_GAgHistoryLength(b *testing.B) {
	runExperiment(b, "fig7", map[string]string{
		"GAg(6-bit)":  "GAg6-gmean",
		"GAg(18-bit)": "GAg18-gmean",
	})
}

func BenchmarkFigure8_EqualAccuracyCost(b *testing.B) {
	runExperiment(b, "fig8", map[string]string{
		"GAg(HR(1,,18-sr),1xPHT(2^18,A2))":     "GAg18-gmean",
		"PAg(BHT(512,4,12-sr),1xPHT(2^12,A2))": "PAg12-gmean",
		"PAp(BHT(512,4,6-sr),512xPHT(2^6,A2))": "PAp6-gmean",
	})
}

func BenchmarkFigure9_ContextSwitch(b *testing.B) {
	runExperiment(b, "fig9", map[string]string{
		"PAg(BHT(512,4,12-sr),1xPHT(2^12,A2))":   "PAg-gmean",
		"PAg(BHT(512,4,12-sr),1xPHT(2^12,A2),c)": "PAg-cs-gmean",
	})
}

func BenchmarkFigure10_BHTImplementation(b *testing.B) {
	runExperiment(b, "fig10", map[string]string{
		"PAg(IBHT(inf,,12-sr),1xPHT(2^12,A2),c)": "ideal-gmean",
		"PAg(BHT(256,1,12-sr),1xPHT(2^12,A2),c)": "dm256-gmean",
	})
}

func BenchmarkFigure11_SchemeComparison(b *testing.B) {
	runExperiment(b, "fig11", map[string]string{
		"PAg(BHT(512,4,12-sr),1xPHT(2^12,A2))": "PAg-gmean",
		"PSg(BHT(512,4,12-sr),1xPHT(2^12,PB))": "PSg-gmean",
		"BTB(BHT(512,4,A2),)":                  "BTB-gmean",
		"AlwaysTaken":                          "AT-gmean",
	})
}

func BenchmarkExtensionTaxonomy(b *testing.B) {
	runExperiment(b, "ext-taxonomy", map[string]string{
		"GAg(HR(1,,6-sr),1xPHT(2^6,A2))":   "GAg6-gmean",
		"SAg(SHT(64,,6-sr),1xPHT(2^6,A2))": "SAg6-gmean",
	})
}

func BenchmarkExtensionInterleave(b *testing.B) {
	opts := twolevel.ExperimentOptions{CondBranches: benchBudget()}
	var report *twolevel.Report
	for i := 0; i < b.N; i++ {
		var err error
		report, err = twolevel.RunExperiment("ext-interleave", opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(report.Value("gcc isolated", "accuracy"), "gcc-isolated")
	b.ReportMetric(report.Value("gcc+espresso interleaved", "accuracy"), "interleaved")
}

func BenchmarkExtensionResidual(b *testing.B) {
	opts := twolevel.ExperimentOptions{CondBranches: benchBudget()}
	var report *twolevel.Report
	for i := 0; i < b.N; i++ {
		var err error
		report, err = twolevel.RunExperiment("ext-residual", opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(report.Value("gcc", "interference"), "gcc-interference-share")
}

// BenchmarkFigure6TraceCache is the capture-cache before/after
// comparison on a multi-spec experiment (nine specs x nine benchmarks):
//
//	live        — trace cache disabled: every run re-executes the CPU
//	              interpreter, as the harness did before the cache existed
//	cached-cold — capture cache starts empty each iteration: the
//	              interpreter runs once per (benchmark, data set) and all
//	              specs replay the shared capture in batched passes
//	cached-warm — captures already materialised: pure replay
//
// BENCH_experiments.json records the measured ratios; cached-cold is the
// end-to-end speedup a fresh process sees.
func BenchmarkFigure6TraceCache(b *testing.B) {
	opts := twolevel.ExperimentOptions{CondBranches: benchBudget()}
	b.Run("live", func(b *testing.B) {
		o := opts
		o.DisableTraceCache = true
		for i := 0; i < b.N; i++ {
			if _, err := twolevel.RunExperiment("fig6", o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			twolevel.ResetExperimentCaches()
			if _, err := twolevel.RunExperiment("fig6", opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached-warm", func(b *testing.B) {
		twolevel.ResetExperimentCaches()
		if _, err := twolevel.RunExperiment("fig6", opts); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := twolevel.RunExperiment("fig6", opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Throughput benchmarks: predictions per second on a live trace.

func benchPredictor(b *testing.B, specStr string) {
	b.Helper()
	p, err := twolevel.NewPredictor(specStr)
	if err != nil {
		b.Fatal(err)
	}
	src, err := twolevel.NewBenchmarkSource("espresso", false)
	if err != nil {
		b.Fatal(err)
	}
	// Pre-capture a trace so the benchmark measures prediction alone.
	var branches []twolevel.Branch
	for len(branches) < 65536 {
		e, err := src.Next()
		if err != nil {
			b.Fatal(err)
		}
		if !e.Trap && e.Branch.Class == twolevel.Cond {
			branches = append(branches, e.Branch)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br := branches[i&65535]
		pred := p.Predict(br)
		p.Update(br, pred)
	}
}

func BenchmarkPredictGAg(b *testing.B) { benchPredictor(b, "GAg(HR(1,,12-sr),1xPHT(2^12,A2))") }
func BenchmarkPredictPAg(b *testing.B) { benchPredictor(b, "PAg(BHT(512,4,12-sr),1xPHT(2^12,A2))") }
func BenchmarkPredictPAp(b *testing.B) {
	benchPredictor(b, "PAp(BHT(512,4,6-sr),512xPHT(2^6,A2))")
}
func BenchmarkPredictBTB(b *testing.B) { benchPredictor(b, "BTB(BHT(512,4,A2),)") }

// BenchmarkKernelVsRunner compares the flat replay kernel against the
// interpretive runner on identical packed traces, one sub-benchmark pair
// per (variation, automaton). Both arms replay the same snapshot with a
// fresh predictor per iteration; events/sec is the headline metric the
// fast path exists to move (the Results are bit-identical, so the pair
// differs only in speed).
func BenchmarkKernelVsRunner(b *testing.B) {
	src, err := twolevel.NewBenchmarkSource("espresso", false)
	if err != nil {
		b.Fatal(err)
	}
	snap, err := twolevel.PackTrace(twolevel.LimitConditional(src, 100_000))
	if err != nil {
		b.Fatal(err)
	}
	events := float64(snap.Len())
	arm := func(b *testing.B, specStr string, disable bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p, err := twolevel.NewPredictor(specStr)
			if err != nil {
				b.Fatal(err)
			}
			opts := twolevel.SimOptions{DisableFastpath: disable}
			if _, err := twolevel.Simulate(p, snap.Reader(), opts); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(events*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	}
	for _, c := range []struct{ name, spec string }{
		{"GAg-A2", "GAg(HR(1,,12-sr),1xPHT(2^12,A2))"},
		{"GAg-A3", "GAg(HR(1,,12-sr),1xPHT(2^12,A3))"},
		{"GAg-LT", "GAg(HR(1,,12-sr),1xPHT(2^12,LT))"},
		{"PAg-A2", "PAg(BHT(512,4,12-sr),1xPHT(2^12,A2))"},
		{"PAg-A1", "PAg(BHT(512,4,12-sr),1xPHT(2^12,A1))"},
		{"PAp-A2", "PAp(BHT(512,4,6-sr),512xPHT(2^6,A2))"},
		{"PAp-A4", "PAp(BHT(512,4,6-sr),512xPHT(2^6,A4))"},
		{"SAs-A2", "SAs(SHT(64,,8-sr),16xPHT(2^8,A2))"},
		{"AlwaysTaken", "AlwaysTaken"},
	} {
		b.Run(c.name+"/kernel", func(b *testing.B) { arm(b, c.spec, false) })
		b.Run(c.name+"/runner", func(b *testing.B) { arm(b, c.spec, true) })
	}
}

// BenchmarkKernelSharded measures PC-partitioned parallel replay inside
// the kernel for a per-address scheme at increasing shard counts.
func BenchmarkKernelSharded(b *testing.B) {
	src, err := twolevel.NewBenchmarkSource("espresso", false)
	if err != nil {
		b.Fatal(err)
	}
	snap, err := twolevel.PackTrace(twolevel.LimitConditional(src, 100_000))
	if err != nil {
		b.Fatal(err)
	}
	events := float64(snap.Len())
	const specStr = "PAp(BHT(512,4,6-sr),512xPHT(2^6,A2))"
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := twolevel.NewPredictor(specStr)
				if err != nil {
					b.Fatal(err)
				}
				opts := twolevel.SimOptions{Shards: shards}
				if _, err := twolevel.Simulate(p, snap.Reader(), opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(events*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkSimObserverOverhead measures the telemetry hook cost in the
// simulator loop over a prerecorded trace: the nil-observer arm is the
// baseline the hooks must not slow down (and must not allocate); the
// runstats arm carries a full RunStats observer.
func BenchmarkSimObserverOverhead(b *testing.B) {
	src, err := twolevel.NewBenchmarkSource("espresso", false)
	if err != nil {
		b.Fatal(err)
	}
	tr := &twolevel.Trace{}
	if err := tr.AppendAll(twolevel.LimitConditional(src, 50_000)); err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, obs twolevel.Observer) {
		p, err := twolevel.NewPredictor("PAg(BHT(512,4,12-sr),1xPHT(2^12,A2))")
		if err != nil {
			b.Fatal(err)
		}
		rd := tr.Reader()
		opts := twolevel.SimOptions{Observer: obs}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rd.Reset()
			if _, err := twolevel.Simulate(p, rd, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("nil", func(b *testing.B) { run(b, nil) })
	b.Run("runstats", func(b *testing.B) { run(b, twolevel.NewRunStats()) })
}

// BenchmarkSimSpanOverhead measures the span-tracing cost in the
// simulator loop over a prerecorded trace. The nil arm is the
// zero-cost-when-nil contract: a run without a tracer attached must not
// allocate for the instrumentation at all (asserted, not just
// reported). The traced arm opens one replay span per run against a
// live tracer.
func BenchmarkSimSpanOverhead(b *testing.B) {
	src, err := twolevel.NewBenchmarkSource("espresso", false)
	if err != nil {
		b.Fatal(err)
	}
	tr := &twolevel.Trace{}
	if err := tr.AppendAll(twolevel.LimitConditional(src, 50_000)); err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, sp *twolevel.Span) {
		p, err := twolevel.NewPredictor("PAg(BHT(512,4,12-sr),1xPHT(2^12,A2))")
		if err != nil {
			b.Fatal(err)
		}
		rd := tr.Reader()
		opts := twolevel.SimOptions{Span: sp}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rd.Reset()
			if _, err := twolevel.Simulate(p, rd, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("nil", func(b *testing.B) {
		// The replay with no span attached must not allocate: warm the
		// predictor once, then assert the steady state before timing.
		p, err := twolevel.NewPredictor("PAg(BHT(512,4,12-sr),1xPHT(2^12,A2))")
		if err != nil {
			b.Fatal(err)
		}
		rd := tr.Reader()
		if _, err := twolevel.Simulate(p, rd, twolevel.SimOptions{}); err != nil {
			b.Fatal(err)
		}
		allocs := testing.AllocsPerRun(3, func() {
			rd.Reset()
			if _, err := twolevel.Simulate(p, rd, twolevel.SimOptions{}); err != nil {
				b.Fatal(err)
			}
		})
		if allocs != 0 {
			b.Fatalf("nil-span replay allocated %.0f times per run, want 0", allocs)
		}
		run(b, nil)
	})
	b.Run("traced", func(b *testing.B) {
		tracer := twolevel.NewSpanTracer()
		root := tracer.Root("bench")
		defer root.End()
		run(b, root)
	})
}

// BenchmarkTraceGeneration measures the CPU-simulator substrate: events
// generated per second from the gcc program.
func BenchmarkTraceGeneration(b *testing.B) {
	src, err := twolevel.NewBenchmarkSource("gcc", false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := src.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEnd measures the full pipeline: program execution,
// event generation and prediction together.
func BenchmarkEndToEnd(b *testing.B) {
	p, err := twolevel.NewPredictor("PAg(BHT(512,4,12-sr),1xPHT(2^12,A2))")
	if err != nil {
		b.Fatal(err)
	}
	src, err := twolevel.NewBenchmarkSource("doduc", false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	res, err := twolevel.Simulate(p, src, twolevel.SimOptions{MaxCondBranches: uint64(b.N)})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.Accuracy.Rate(), "accuracy")
}

// Ablation benchmarks: the design-choice experiments of DESIGN.md §5.
// Each runs the two arms of one design decision and reports both
// accuracies as metrics (fractions).

func ablationAccuracy(b *testing.B, bench string, p twolevel.Predictor, opts twolevel.SimOptions) float64 {
	b.Helper()
	src, err := twolevel.NewBenchmarkSource(bench, false)
	if err != nil {
		b.Fatal(err)
	}
	if opts.MaxCondBranches == 0 {
		opts.MaxCondBranches = benchBudget()
	}
	res, err := twolevel.Simulate(p, src, opts)
	if err != nil {
		b.Fatal(err)
	}
	return res.Accuracy.Rate()
}

// BenchmarkAblationSpeculativeHistory measures §3.1: with eight branches
// in flight, prediction from stale history loses accuracy; speculative
// history update with squash-and-repredict recovers it.
func BenchmarkAblationSpeculativeHistory(b *testing.B) {
	var stale, spec float64
	for i := 0; i < b.N; i++ {
		mk := func(speculative bool) twolevel.Predictor {
			p, err := twolevel.NewTwoLevel(twolevel.TwoLevelConfig{
				Variation: twolevel.PAg, HistoryBits: 12, Automaton: twolevel.A2,
				Entries: 512, Assoc: 4, SpeculativeHistory: speculative,
			})
			if err != nil {
				b.Fatal(err)
			}
			return p
		}
		opts := twolevel.SimOptions{PipelineDepth: 8}
		stale = ablationAccuracy(b, "eqntott", mk(false), opts)
		spec = ablationAccuracy(b, "eqntott", mk(true), opts)
	}
	b.ReportMetric(stale, "stale-history")
	b.ReportMetric(spec, "speculative")
}

// BenchmarkAblationPApInherit measures the PAp slot-replacement policy:
// reinitialising the slot's pattern table for the incoming branch
// (default, per-address semantics) vs inheriting the stale contents
// (what reset-free hardware would do).
func BenchmarkAblationPApInherit(b *testing.B) {
	var reset, inherit float64
	for i := 0; i < b.N; i++ {
		mk := func(inheritPHT bool) twolevel.Predictor {
			p, err := twolevel.NewTwoLevel(twolevel.TwoLevelConfig{
				Variation: twolevel.PAp, HistoryBits: 6, Automaton: twolevel.A2,
				Entries: 512, Assoc: 4, InheritPHTOnReplace: inheritPHT,
			})
			if err != nil {
				b.Fatal(err)
			}
			return p
		}
		reset = ablationAccuracy(b, "doduc", mk(false), twolevel.SimOptions{})
		inherit = ablationAccuracy(b, "doduc", mk(true), twolevel.SimOptions{})
	}
	b.ReportMetric(reset, "reset-on-replace")
	b.ReportMetric(inherit, "inherit")
}

// BenchmarkAblationPHTInit measures the §4.2 initialisation choice:
// pattern entries starting on the taken side (state 3) vs the not-taken
// side (state 0).
func BenchmarkAblationPHTInit(b *testing.B) {
	var taken, notTaken float64
	for i := 0; i < b.N; i++ {
		mk := func(init *twolevel.AutomatonState) twolevel.Predictor {
			cfg := twolevel.TwoLevelConfig{
				Variation: twolevel.PAg, HistoryBits: 12, Automaton: twolevel.A2,
				Entries: 512, Assoc: 4,
			}
			if init != nil {
				cfg.PatternInit = init
			}
			p, err := twolevel.NewTwoLevel(cfg)
			if err != nil {
				b.Fatal(err)
			}
			return p
		}
		zero := twolevel.AutomatonState(0)
		taken = ablationAccuracy(b, "espresso", mk(nil), twolevel.SimOptions{})
		notTaken = ablationAccuracy(b, "espresso", mk(&zero), twolevel.SimOptions{})
	}
	b.ReportMetric(taken, "init-taken")
	b.ReportMetric(notTaken, "init-not-taken")
}

// BenchmarkAblationColdHistory measures the §4.2 BHT miss initialisation:
// all-ones with first-outcome smearing (the paper's policy) vs all-zero
// history.
func BenchmarkAblationColdHistory(b *testing.B) {
	var smear, zero float64
	for i := 0; i < b.N; i++ {
		mk := func(coldZero bool) twolevel.Predictor {
			p, err := twolevel.NewTwoLevel(twolevel.TwoLevelConfig{
				Variation: twolevel.PAg, HistoryBits: 12, Automaton: twolevel.A2,
				Entries: 512, Assoc: 4, ColdHistoryZero: coldZero,
			})
			if err != nil {
				b.Fatal(err)
			}
			return p
		}
		smear = ablationAccuracy(b, "gcc", mk(false), twolevel.SimOptions{})
		zero = ablationAccuracy(b, "gcc", mk(true), twolevel.SimOptions{})
	}
	b.ReportMetric(smear, "ones-smear")
	b.ReportMetric(zero, "zero-init")
}

// BenchmarkAblationCounterWidth sweeps the saturating-counter width s of
// the pattern entries (the paper's cost model parameter): the classic
// result that two bits capture nearly all the benefit.
func BenchmarkAblationCounterWidth(b *testing.B) {
	accs := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, bits := range []int{1, 2, 3, 4} {
			p, err := twolevel.NewTwoLevel(twolevel.TwoLevelConfig{
				Variation: twolevel.PAg, HistoryBits: 12, Automaton: twolevel.A2,
				Entries: 512, Assoc: 4, Machine: twolevel.NewSaturatingAutomaton(bits),
			})
			if err != nil {
				b.Fatal(err)
			}
			accs[bits] = ablationAccuracy(b, "doduc", p, twolevel.SimOptions{})
		}
	}
	for bits, acc := range accs {
		b.ReportMetric(acc, fmt.Sprintf("s%d-bits", bits))
	}
}
