module twolevel

go 1.22
