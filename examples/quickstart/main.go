// Quickstart: build the paper's best-value predictor — PAg with 12-bit
// history registers in a 4-way 512-entry branch history table — and
// measure it on one of the built-in SPEC-like benchmarks.
package main

import (
	"fmt"
	"log"

	"twolevel"
)

func main() {
	// The naming convention is the paper's own (§4.2):
	// Scheme(History(Size,Assoc,Content), Sets x Pattern(Size,Content)).
	p, err := twolevel.NewPredictor("PAg(BHT(512,4,12-sr),1xPHT(2^12,A2))")
	if err != nil {
		log.Fatal(err)
	}

	// Trace source: the generated eqntott benchmark, testing data set.
	src, err := twolevel.NewBenchmarkSource("eqntott", false)
	if err != nil {
		log.Fatal(err)
	}

	res, err := twolevel.Simulate(p, src, twolevel.SimOptions{
		MaxCondBranches: 200_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on eqntott\n", p.Name())
	fmt.Printf("  conditional branches: %d\n", res.Accuracy.Predictions)
	fmt.Printf("  prediction accuracy:  %.2f%%\n", 100*res.Accuracy.Rate())
	fmt.Printf("  instructions traced:  %d\n", res.Instructions)

	// The hardware budget this configuration needs, per the §3.4 model.
	bd, err := twolevel.EstimateCost(p.Name())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  estimated cost:       %.0f units (BHT %.0f + PHT %.0f)\n",
		bd.Total(), bd.BHT(), bd.PHT())
}
