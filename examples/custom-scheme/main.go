// Custom scheme: implement a predictor the paper did NOT evaluate —
// gshare (McFarling 1993), the historical successor of GAg that XORs the
// branch address into the global history before indexing the pattern
// table — against the twolevel.Predictor interface, and race it against
// the paper's schemes on the integer benchmarks.
//
// The point of the exercise: the public interface is three methods, so
// new ideas drop straight into the existing simulator and benchmark
// harness.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"twolevel"
)

// GShare is a global-history predictor whose pattern table index is the
// XOR of the history register and the branch address, spreading branches
// that share history across different counters.
type GShare struct {
	k       int
	mask    uint32
	history uint32
	table   []uint8 // 2-bit saturating counters
}

// NewGShare returns a gshare predictor with a 2^k-entry counter table.
func NewGShare(k int) *GShare {
	g := &GShare{k: k, mask: uint32(1)<<k - 1}
	g.table = make([]uint8, 1<<k)
	for i := range g.table {
		g.table[i] = 3 // match the paper's taken-biased initialisation
	}
	return g
}

func (g *GShare) index(pc uint32) uint32 { return (g.history ^ (pc >> 2)) & g.mask }

// Name implements twolevel.Predictor.
func (g *GShare) Name() string { return fmt.Sprintf("gshare(%d)", g.k) }

// Predict implements twolevel.Predictor.
func (g *GShare) Predict(b twolevel.Branch) bool { return g.table[g.index(b.PC)] >= 2 }

// Update implements twolevel.Predictor.
func (g *GShare) Update(b twolevel.Branch, predicted bool) {
	i := g.index(b.PC)
	if b.Taken {
		if g.table[i] < 3 {
			g.table[i]++
		}
	} else if g.table[i] > 0 {
		g.table[i]--
	}
	g.history = g.history<<1 | b2u(b.Taken)
}

// ContextSwitch implements twolevel.Predictor.
func (g *GShare) ContextSwitch() { g.history = 0 }

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func main() {
	const branches = 100_000
	benchmarks := []string{"eqntott", "espresso", "gcc", "li"}

	rivals := []func() twolevel.Predictor{
		func() twolevel.Predictor { return NewGShare(12) },
		func() twolevel.Predictor {
			p, err := twolevel.NewPredictor("GAg(HR(1,,12-sr),1xPHT(2^12,A2))")
			if err != nil {
				log.Fatal(err)
			}
			return p
		},
		func() twolevel.Predictor {
			p, err := twolevel.NewPredictor("PAg(BHT(512,4,12-sr),1xPHT(2^12,A2))")
			if err != nil {
				log.Fatal(err)
			}
			return p
		},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "predictor")
	for _, b := range benchmarks {
		fmt.Fprintf(tw, "\t%s", b)
	}
	fmt.Fprintln(tw)
	for _, mk := range rivals {
		name := mk().Name()
		fmt.Fprintf(tw, "%s", name)
		for _, bench := range benchmarks {
			p := mk()
			src, err := twolevel.NewBenchmarkSource(bench, false)
			if err != nil {
				log.Fatal(err)
			}
			res, err := twolevel.Simulate(p, src, twolevel.SimOptions{MaxCondBranches: branches})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "\t%.2f%%", 100*res.Accuracy.Rate())
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngshare shares GAg's single table but decorrelates same-history branches")
	fmt.Println("with the address XOR — the idea that eventually superseded plain GAg.")
}
