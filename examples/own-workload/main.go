// Own workload: write a program in the repository's assembly language,
// assemble it with the public API, and compare predictors on it — the
// trace-driven methodology of the paper applied to code you control.
//
// The program is a little state machine whose branch is perfectly
// predictable from pattern history (period-3 behaviour) but hovers at
// two-thirds accuracy for any per-branch counter: the cleanest possible
// demonstration of what the second level of Two-Level Adaptive
// Prediction buys.
package main

import (
	"fmt"
	"log"
	"os"

	"twolevel"
)

const source = `
; period-3 branch: taken, taken, not-taken, repeating
	li  r1, 0          ; step counter
	li  r2, 30000      ; iterations
loop:
	addi r1, r1, 1
	li   r3, 3
	rem  r3, r1, r3
	bcnd ne0, r3, taken   ; taken twice out of three
	addi r4, r4, 1        ; every third step
taken:
	addi r2, r2, -1
	bcnd ne0, r2, loop
	halt
`

func main() {
	prog, err := twolevel.AssembleProgram(source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d bytes; listing:\n\n", prog.Size())
	if err := twolevel.DisassembleProgram(prog, os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	for _, scheme := range []string{
		"PAg(BHT(512,4,8-sr),1xPHT(2^8,A2))", // two-level: learns the period
		"BTB(BHT(512,4,A2),)",                // per-branch counter: stuck at the bias
		"AlwaysTaken",
	} {
		p, err := twolevel.NewPredictor(scheme)
		if err != nil {
			log.Fatal(err)
		}
		src, err := twolevel.NewProgramSource(prog, false)
		if err != nil {
			log.Fatal(err)
		}
		res, err := twolevel.Simulate(p, src, twolevel.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-38s %.2f%%\n", p.Name(), 100*res.Accuracy.Rate())
	}
	fmt.Println("\nthe pattern-history level turns a 67% branch into a ~100% branch;")
	fmt.Println("counters cannot, whatever their size.")
}
