// Trace files: capture a benchmark's branch trace to a portable binary
// file, inspect it, and re-simulate predictors from the file — the
// trace-driven methodology of §4 decoupled into capture and replay, the
// way one would archive traces for repeatable experiments.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"twolevel"
)

func main() {
	dir, err := os.MkdirTemp("", "twolevel-traces")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "doduc.trc")

	// Capture: 50k conditional branches of doduc's testing run.
	src, err := twolevel.NewBenchmarkSource("doduc", false)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := twolevel.WriteTrace(f, twolevel.LimitConditional(src, 50_000)); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}

	// Inspect.
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	rd, err := twolevel.OpenTrace(rf)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := twolevel.SummarizeTrace(rd)
	if err != nil {
		log.Fatal(err)
	}
	rf.Close()
	fmt.Printf("captured %s: %d bytes, %d instructions, %d branches, %d static conditional sites\n",
		filepath.Base(path), info.Size(), stats.Instructions, stats.Branches(), stats.StaticCond())
	fmt.Printf("bytes per branch: %.1f\n\n", float64(info.Size())/float64(stats.Branches()))

	// Replay the same file against several predictors. Every replay
	// sees the identical stream — the repeatability that makes
	// trace-driven studies comparable.
	for _, scheme := range []string{
		"PAg(BHT(512,4,12-sr),1xPHT(2^12,A2))",
		"GAg(HR(1,,12-sr),1xPHT(2^12,A2))",
		"BTB(BHT(512,4,A2),)",
		"AlwaysTaken",
	} {
		p, err := twolevel.NewPredictor(scheme)
		if err != nil {
			log.Fatal(err)
		}
		rf, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		rd, err := twolevel.OpenTrace(rf)
		if err != nil {
			log.Fatal(err)
		}
		res, err := twolevel.Simulate(p, rd, twolevel.SimOptions{})
		rf.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-42s %.2f%%\n", p.Name(), 100*res.Accuracy.Rate())
	}
}
