// Residual analysis: the paper closes by saying its 97% "is not good
// enough" and that the authors are examining the remaining mispredictions
// to characterise them. This example does that mechanically for each
// benchmark with the public AnalyzeResidual API: every misprediction of a
// PAg(12) predictor is attributed to a cause, and the table shows that
// "the 3 percent" is a different animal on every program — capacity on
// gcc, cold code on fpppp, loop exits on matrix300, pattern interference
// on spice2g6.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"twolevel"
)

func main() {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\taccuracy\tbht-miss\tcold\ttraining\tinterference\tinherent")
	for _, b := range twolevel.Benchmarks() {
		src, err := twolevel.NewBenchmarkSource(b.Name, false)
		if err != nil {
			log.Fatal(err)
		}
		bd, err := twolevel.AnalyzeResidual(src, 12, 512, 4, 60_000)
		if err != nil {
			log.Fatal(err)
		}
		// Shares indexed per the analysis categories: bht-miss, cold,
		// training, interference, inherent.
		fmt.Fprintf(tw, "%s\t%.2f%%", b.Name, 100*bd.Accuracy())
		for c := 0; c < len(bd.ByCategory); c++ {
			share := 0.0
			if bd.Mispredictions > 0 {
				share = float64(bd.ByCategory[c]) / float64(bd.Mispredictions)
			}
			fmt.Fprintf(tw, "\t%.0f%%", 100*share)
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfixes differ per cause: a bigger BHT for gcc, per-address pattern")
	fmt.Println("tables (PAp) for spice2g6, and longer loops would need longer history.")
}
