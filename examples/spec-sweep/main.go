// Spec sweep: reproduce the paper's central engineering trade-off — the
// accuracy/cost frontier of the three Two-Level Adaptive variations as
// the history register length grows (§5.1.2-§5.1.3).
//
// For each variation and history length the program measures prediction
// accuracy (geometric mean over the integer benchmarks, the hard part of
// the suite) and evaluates the §3.4 hardware cost model, printing the
// frontier the paper's Figures 6-8 describe: GAg needs very long
// registers (and an exponentially growing pattern table), PAg gets there
// cheaply, PAp gets there with short registers but pays for 512 pattern
// tables.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"

	"twolevel"
)

const branches = 60_000

var integerBenchmarks = []string{"eqntott", "espresso", "gcc", "li"}

func measure(specStr string) (accuracy float64, cost float64) {
	var accs []float64
	for _, bench := range integerBenchmarks {
		p, err := twolevel.NewPredictor(specStr)
		if err != nil {
			log.Fatal(err)
		}
		src, err := twolevel.NewBenchmarkSource(bench, false)
		if err != nil {
			log.Fatal(err)
		}
		res, err := twolevel.Simulate(p, src, twolevel.SimOptions{MaxCondBranches: branches})
		if err != nil {
			log.Fatal(err)
		}
		accs = append(accs, res.Accuracy.Rate())
	}
	sum := 0.0
	for _, a := range accs {
		sum += math.Log(a)
	}
	bd, err := twolevel.EstimateCost(specStr)
	if err != nil {
		log.Fatal(err)
	}
	return math.Exp(sum / float64(len(accs))), bd.Total()
}

func main() {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "configuration\tint gmean\tcost\tcost/point\n")
	type point struct {
		spec string
		k    int
	}
	var rows []point
	for _, k := range []int{4, 6, 8, 10, 12, 14, 16, 18} {
		rows = append(rows, point{fmt.Sprintf("GAg(HR(1,,%d-sr),1xPHT(2^%d,A2))", k, k), k})
	}
	for _, k := range []int{4, 6, 8, 10, 12} {
		rows = append(rows, point{fmt.Sprintf("PAg(BHT(512,4,%d-sr),1xPHT(2^%d,A2))", k, k), k})
	}
	for _, k := range []int{4, 6, 8} {
		rows = append(rows, point{fmt.Sprintf("PAp(BHT(512,4,%d-sr),512xPHT(2^%d,A2))", k, k), k})
	}
	for _, r := range rows {
		acc, cost := measure(r.spec)
		fmt.Fprintf(tw, "%s\t%.2f%%\t%.0f\t%.0f\n", r.spec, 100*acc, cost, cost/(100*acc))
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe paper's conclusion: at matched accuracy PAg is the cheapest of the")
	fmt.Println("three implementations (GAg's table grows as 2^k; PAp multiplies its")
	fmt.Println("pattern storage by the BHT size).")
}
