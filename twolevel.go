// Package twolevel is a complete implementation and experimental
// reproduction of Yeh & Patt's "Alternative Implementations of Two-Level
// Adaptive Branch Prediction".
//
// The package is the public face of the repository: it re-exports the
// vocabulary types (branches, traces, predictors, specifications) and
// provides constructors and runners for everything a user needs:
//
//   - Build any predictor from the paper's naming convention
//     (NewPredictor, NewTrainedPredictor): the Two-Level Adaptive
//     variations GAg/PAg/PAp with any of the Figure 2 automata, the
//     Static Training schemes GSg/PSg, Branch Target Buffer designs and
//     the static schemes.
//   - Generate branch traces from the nine built-in SPEC-like benchmark
//     programs (Benchmarks, NewBenchmarkSource) or read/write portable
//     trace files (WriteTrace, OpenTrace, and the text variants).
//   - Simulate a predictor over a trace (Simulate), with optional
//     context-switch injection and the §3.1 pipelined timing model.
//   - Estimate hardware cost with the §3.4 model (EstimateCost).
//   - Regenerate every table and figure of the paper's evaluation
//     (RunExperiment, ExperimentIDs).
//   - Attach telemetry observers to any run (SimOptions.Observer):
//     hot-branch tables, interval accuracy series and run statistics
//     (NewHotBranches, NewIntervalSeries, NewRunStats), or collect a
//     metrics document across experiments (ExperimentTelemetry).
//
// # Errors and panics
//
// Every exported constructor and runner in this package returns errors
// for invalid input — malformed spec strings, out-of-range configuration
// fields, broken trace streams — and never panics on caller mistakes.
// Internal packages reserve panics for programmer errors (reaching one
// through this API is a bug in the repository). The experiment pipeline
// extends the contract to runtime faults: grid failures come back as
// attributed ExperimentCellError values, recovered panics included, and
// runs are cancellable via ExperimentOptions.Context /
// SimOptions.Context. See EXPERIMENTS.md, "Failure semantics".
//
// A minimal use:
//
//	p, _ := twolevel.NewPredictor("PAg(BHT(512,4,12-sr),1xPHT(2^12,A2))")
//	src, _ := twolevel.NewBenchmarkSource("eqntott", false)
//	res, _ := twolevel.Simulate(p, src, twolevel.SimOptions{MaxCondBranches: 100000})
//	fmt.Printf("accuracy: %.2f%%\n", 100*res.Accuracy.Rate())
package twolevel

import (
	"fmt"
	"io"
	"log/slog"
	"sort"

	"twolevel/internal/analysis"
	"twolevel/internal/asm"
	"twolevel/internal/automaton"
	"twolevel/internal/buildinfo"
	"twolevel/internal/cost"
	"twolevel/internal/cpu"
	"twolevel/internal/experiments"
	"twolevel/internal/isa"
	"twolevel/internal/logx"
	"twolevel/internal/predictor"
	"twolevel/internal/prog"
	"twolevel/internal/sim"
	"twolevel/internal/span"
	"twolevel/internal/spec"
	"twolevel/internal/telemetry"
	"twolevel/internal/trace"
)

// Core vocabulary, re-exported from the internal packages. The aliases
// are transparent: a Branch here is the same type the simulator uses.
type (
	// Branch is one dynamic branch: address, target, class, outcome.
	Branch = trace.Branch
	// Event is one trace element: a branch or a trap, with the
	// instruction count since the previous event.
	Event = trace.Event
	// Class is a branch class (conditional, call, return, ...).
	Class = trace.Class
	// Source is a stream of trace events ending with io.EOF.
	Source = trace.Source
	// Trace is an in-memory event sequence.
	Trace = trace.Trace
	// TraceStats summarises a trace (per-class counts, static branch
	// sites, taken rates).
	TraceStats = trace.Stats
	// TraceSnapshot is an immutable packed event sequence. Readers over
	// a snapshot qualify for the flat replay kernel, which replays the
	// packed columns directly instead of decoding events one at a time.
	TraceSnapshot = trace.Snapshot

	// Predictor is the interface every scheme implements: Predict,
	// Update, ContextSwitch, Name.
	Predictor = predictor.Predictor

	// Spec is a parsed predictor configuration in the paper's naming
	// convention.
	Spec = spec.Spec

	// SimOptions configures a simulation run (context switches,
	// branch budget, pipeline depth).
	SimOptions = sim.Options
	// SimResult aggregates a simulation run.
	SimResult = sim.Result

	// Benchmark is one of the nine generated SPEC-like programs.
	Benchmark = prog.Benchmark
	// DataSet identifies a benchmark input configuration (Table 2).
	DataSet = prog.DataSet

	// CostBreakdown itemises a predictor's estimated hardware cost
	// (Equation 3).
	CostBreakdown = cost.Breakdown
	// CostParams are the structural parameters of the cost model.
	CostParams = cost.Params
	// CostConstants are the base costs C_s..C_a of §3.4.
	CostConstants = cost.Constants

	// ExperimentOptions configures a table/figure reproduction.
	ExperimentOptions = experiments.Options
	// Report is a reproduced table or figure.
	Report = experiments.Report
)

// Branch classes.
const (
	Cond     = trace.Cond
	Uncond   = trace.Uncond
	Call     = trace.Call
	Return   = trace.Return
	Indirect = trace.Indirect
)

// DefaultCostConstants are the base-cost constants used throughout the
// repository's cost figures.
var DefaultCostConstants = cost.Defaults

// ParseSpec parses a predictor configuration string, e.g.
// "PAg(BHT(512,4,12-sr),1xPHT(2^12,A2),c)".
func ParseSpec(s string) (Spec, error) { return spec.Parse(s) }

// NewPredictor builds the predictor described by the specification
// string. Schemes that require a training pass (GSg, PSg, Profiling)
// are rejected; use NewTrainedPredictor for those.
func NewPredictor(s string) (Predictor, error) {
	sp, err := spec.Parse(s)
	if err != nil {
		return nil, err
	}
	if sp.NeedsTraining() {
		return nil, fmt.Errorf("twolevel: %s needs a training pass; use NewTrainedPredictor", sp.Scheme)
	}
	return spec.Build(sp, nil)
}

// NewTrainedPredictor builds a training-based predictor (GSg, PSg or
// Profiling), running its profiling pass over the conditional branches of
// training first.
func NewTrainedPredictor(s string, training Source) (Predictor, error) {
	sp, err := spec.Parse(s)
	if err != nil {
		return nil, err
	}
	if !sp.NeedsTraining() {
		return nil, fmt.Errorf("twolevel: %s takes no training pass; use NewPredictor", sp.Scheme)
	}
	td := &spec.TrainingData{}
	if sp.Scheme == spec.SchemeProfiling {
		td.Profile = predictor.NewProfileTrainer()
		if err := td.Profile.ObserveTrace(training); err != nil {
			return nil, err
		}
	} else {
		td.Static, err = spec.NewTrainer(sp)
		if err != nil {
			return nil, err
		}
		if err := td.Static.ObserveTrace(training); err != nil {
			return nil, err
		}
	}
	return spec.Build(sp, td)
}

// Simulate drives p over the event stream src, predicting every
// conditional branch.
func Simulate(p Predictor, src Source, opts SimOptions) (SimResult, error) {
	return sim.Run(p, src, opts)
}

// SimulateMany drives several predictors down a single pass of src: each
// event is decoded once and fed to every still-active predictor. Results
// are bit-identical to calling Simulate once per predictor over its own
// copy of the stream; options (budgets, context switches, pipeline depth,
// observers) may differ per predictor. opts must have one entry per
// predictor.
func SimulateMany(preds []Predictor, src Source, opts []SimOptions) ([]SimResult, error) {
	return sim.RunMany(preds, src, opts)
}

// Benchmarks returns the nine built-in benchmarks in Table 1 order.
func Benchmarks() []*Benchmark { return prog.All }

// BenchmarkByName finds a built-in benchmark ("eqntott", "gcc", ...).
func BenchmarkByName(name string) (*Benchmark, error) { return prog.ByName(name) }

// NewBenchmarkSource builds the named benchmark and returns a looping
// trace source over its testing data set (or its training data set when
// training is true). The source never runs dry: the program restarts with
// fresh data whenever it finishes.
func NewBenchmarkSource(name string, training bool) (Source, error) {
	b, err := prog.ByName(name)
	if err != nil {
		return nil, err
	}
	ds := b.Testing
	if training {
		ds = b.Training
	}
	return b.NewSource(ds)
}

// LimitConditional wraps src so it ends (io.EOF) after n conditional
// branches have streamed through.
func LimitConditional(src Source, n uint64) Source {
	return &trace.LimitSource{Src: src, N: n}
}

// PackTrace drains src into a packed snapshot. Simulate runs over
// snapshot readers take the flat replay kernel whenever the predictor
// and options qualify (see SimOptions.DisableFastpath).
func PackTrace(src Source) (TraceSnapshot, error) {
	var p trace.Packed
	for {
		e, err := src.Next()
		if err == io.EOF {
			return p.View(p.Len()), nil
		}
		if err != nil {
			return TraceSnapshot{}, err
		}
		p.Append(e)
	}
}

// SummarizeTrace drains src and returns its statistics.
func SummarizeTrace(src Source) (*TraceStats, error) { return trace.Summarize(src) }

// WriteTrace encodes src to w in the compact binary trace format.
func WriteTrace(w io.Writer, src Source) error {
	tw, err := trace.NewWriter(w)
	if err != nil {
		return err
	}
	return tw.WriteAll(src)
}

// OpenTrace decodes a binary trace stream written by WriteTrace.
func OpenTrace(r io.Reader) (Source, error) { return trace.NewFileReader(r) }

// WriteTraceText encodes src to w in the line-oriented text format.
func WriteTraceText(w io.Writer, src Source) error { return trace.WriteText(w, src) }

// OpenTraceText decodes the text trace format.
func OpenTraceText(r io.Reader) Source { return trace.NewTextReader(r) }

// EstimateCost evaluates the §3.4 hardware cost model for the predictor
// specification with the default constants. BTB, static and ideal-table
// schemes have no cost under the model and are rejected.
func EstimateCost(s string) (CostBreakdown, error) {
	sp, err := spec.Parse(s)
	if err != nil {
		return CostBreakdown{}, err
	}
	return cost.EstimateSpec(sp)
}

// EstimateCostWith evaluates the cost model with explicit structural
// parameters and constants.
func EstimateCostWith(p CostParams, c CostConstants) (CostBreakdown, error) {
	return cost.Estimate(p, c)
}

// ExperimentIDs lists the reproducible tables and figures
// (table1..table3, fig4..fig11) in presentation order.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one of the paper's tables or figures, or one
// of the extension experiments ("ext-gap", "ext-interleave").
func RunExperiment(id string, opts ExperimentOptions) (*Report, error) {
	return experiments.Run(id, opts)
}

// Fault-tolerance vocabulary of the experiment pipeline: attributed
// failures, panic containment and checkpoint/resume. See the "Failure
// semantics" section of EXPERIMENTS.md.
type (
	// ExperimentGridError aggregates every failed cell of an experiment
	// grid; it travels alongside the partial report under
	// ExperimentOptions.KeepGoing.
	ExperimentGridError = experiments.GridError
	// ExperimentCellError attributes one failure to its exact
	// (spec, benchmark) cell.
	ExperimentCellError = experiments.CellError
	// ExperimentPanicError is a panic recovered inside a grid worker,
	// converted into an ordinary attributed error.
	ExperimentPanicError = experiments.PanicError
	// ExperimentCheckpoint is a resumable JSON manifest of completed
	// grid cells; attach one via ExperimentOptions.Checkpoint.
	ExperimentCheckpoint = experiments.Checkpoint
)

// ErrExperimentCaptureMismatch reports that a checkpoint manifest was
// written against a different trace than the one now being generated;
// the resume refuses rather than mixing results.
var ErrExperimentCaptureMismatch = experiments.ErrCaptureMismatch

// OpenExperimentCheckpoint opens or creates a checkpoint manifest. A
// missing file yields an empty checkpoint (a cold run); an existing one
// restores its completed cells, so a resumed suite skips finished work
// and reproduces bit-identical output.
func OpenExperimentCheckpoint(path string) (*ExperimentCheckpoint, error) {
	return experiments.OpenCheckpoint(path)
}

// TraceCaptureStats summarises the experiment harness's capture cache:
// how many (benchmark, data set) streams are materialised and their
// packed footprint.
type TraceCaptureStats = trace.CaptureStats

// ExperimentCaptureStats reports the current capture cache footprint.
func ExperimentCaptureStats() TraceCaptureStats { return experiments.CaptureCacheStats() }

// ResetExperimentCaches drops the experiment harness's memoised benchmark
// programs and captured traces. Benchmarks measuring cold-cache behaviour
// use it; normal callers never need to.
func ResetExperimentCaches() { experiments.ResetCaches() }

// NewMultiplexSource interleaves several trace sources at an instruction
// quantum with per-process address tagging and switch traps — a real
// multi-process context-switch workload (the ext-interleave experiment).
func NewMultiplexSource(sources []Source, quantum uint64) (Source, error) {
	return sim.NewMultiplex(sources, quantum)
}

// MispredictBreakdown characterises the residual mispredictions of an
// instrumented PAg predictor over src: every wrong prediction is
// attributed to a cause (BHT miss, cold or in-training pattern entry,
// pattern interference, or inherent branch noise) — the §6 "examine the
// 3 percent" analysis. entries 0 selects the ideal BHT.
type MispredictBreakdown = analysis.Breakdown

// AnalyzeResidual runs the misprediction-cause analysis with k history
// bits and an entries x assoc BHT, over at most budget conditional
// branches (0 = drain src).
func AnalyzeResidual(src Source, k, entries, assoc int, budget uint64) (MispredictBreakdown, error) {
	return analysis.Analyze(src, k, entries, assoc, budget)
}

// Automaton re-exports the pattern-history automaton kinds for users
// constructing predictors programmatically via TwoLevelConfig.
type Automaton = automaton.Kind

// AutomatonState is a pattern-history state (for the PatternInit
// ablation knob of TwoLevelConfig).
type AutomatonState = automaton.State

// AutomatonMachine is a concrete Moore machine (for the Machine override
// of TwoLevelConfig).
type AutomatonMachine = automaton.Machine

// NewSaturatingAutomaton returns an n-bit saturating up-down counter
// machine — the generalisation of A2 whose width the §3.4 cost model
// calls s. Programmatic configurations only (the naming convention has
// no field for it).
func NewSaturatingAutomaton(bits int) *AutomatonMachine {
	return automaton.NewSaturating(bits)
}

// The Figure 2 automata.
const (
	LastTime = automaton.LastTime
	A1       = automaton.A1
	A2       = automaton.A2
	A3       = automaton.A3
	A4       = automaton.A4
)

// TwoLevelConfig re-exports the programmatic configuration of a
// Two-Level Adaptive predictor for users who want options the naming
// convention does not carry (speculative history, PHT inheritance).
type TwoLevelConfig = predictor.TwoLevelConfig

// Variations of Two-Level Adaptive Branch Prediction (GAp is the
// repository's extension completing the {G,P}x{g,p} grid).
const (
	GAg = predictor.GAg
	PAg = predictor.PAg
	PAp = predictor.PAp
	GAp = predictor.GAp
)

// NewTwoLevel builds a Two-Level Adaptive predictor from a programmatic
// configuration.
func NewTwoLevel(cfg TwoLevelConfig) (*predictor.TwoLevel, error) {
	return predictor.NewTwoLevel(cfg)
}

// Telemetry vocabulary: observers hook the simulator's event loop
// (SimOptions.Observer) and collect per-run metrics without touching the
// nil-observer hot path.
type (
	// Observer receives simulator callbacks for one run: Start/Finish
	// around the run, OnPredict/OnResolve per conditional branch,
	// OnTrap/OnContextSwitch for the rarer events.
	Observer = telemetry.Observer
	// ObserverRunInfo describes the run an observer is attached to.
	ObserverRunInfo = telemetry.RunInfo
	// HotBranches is an Observer ranking static branches by
	// mispredictions.
	HotBranches = telemetry.HotBranches
	// HotBranch is one row of a HotBranches report.
	HotBranch = telemetry.HotBranch
	// IntervalSeries is an Observer sampling accuracy every N resolved
	// conditional branches (warm-up and context-switch recovery curves).
	IntervalSeries = telemetry.IntervalSeries
	// IntervalSample is one point of an IntervalSeries.
	IntervalSample = telemetry.Sample
	// RunStats is an Observer measuring wall-clock, throughput,
	// allocation deltas and predictor table occupancy.
	RunStats = telemetry.RunStats
	// RunMetrics is the summary a RunStats observer produces.
	RunMetrics = telemetry.RunMetrics
	// PredictorOccupancy reports how much of a predictor's tables a run
	// actually touched.
	PredictorOccupancy = predictor.Occupancy
	// PredictorInspector is implemented by predictors that can report
	// table occupancy (TwoLevel and BTB do).
	PredictorInspector = predictor.Inspector

	// ExperimentTelemetry collects per-run metrics across experiment
	// runs; attach one to ExperimentOptions.Telemetry.
	ExperimentTelemetry = experiments.Telemetry
	// ExperimentRunMetrics is one instrumented run in a metrics
	// document.
	ExperimentRunMetrics = experiments.RunMetrics
	// MetricsDocument is the metrics.json schema: experiments, runs and
	// optionally the reports themselves.
	MetricsDocument = experiments.MetricsDocument
	// ReportJSON is the machine-readable form of a Report.
	ReportJSON = experiments.ReportJSON
)

// DefaultExperimentBranches is the default per-benchmark conditional
// branch budget of the experiments.
const DefaultExperimentBranches = experiments.DefaultCondBranches

// NewHotBranches returns a hot-branch observer keeping the top k static
// branches by mispredictions.
func NewHotBranches(k int) *HotBranches { return telemetry.NewHotBranches(k) }

// NewIntervalSeries returns an observer sampling accuracy every interval
// resolved conditional branches.
func NewIntervalSeries(interval uint64) *IntervalSeries {
	return telemetry.NewIntervalSeries(interval)
}

// NewRunStats returns an observer measuring run timing, throughput,
// allocations and predictor occupancy.
func NewRunStats() *RunStats { return telemetry.NewRunStats() }

// MultiObserver fans callbacks out to several observers (nils are
// dropped; the result is nil when none remain).
func MultiObserver(obs ...Observer) Observer { return telemetry.Multi(obs...) }

// Mispredict forensics, live monitoring and structured logging: the
// observability vocabulary behind brexp -forensics / -listen and
// brsim -explain.
type (
	// Forensics is an Observer building a mispredict post-mortem: a
	// bounded flight recorder snapshotting mispredict bursts plus per-PC
	// hard-to-predict profiles (per-history-pattern outcome histograms,
	// automaton transition counts, warmup-vs-steady miss split, history
	// entropy).
	Forensics = telemetry.Forensics
	// ForensicsConfig sizes a Forensics observer; the zero value gets
	// sensible defaults.
	ForensicsConfig = telemetry.ForensicsConfig
	// ForensicsReport is the deterministic report a Forensics observer
	// produces.
	ForensicsReport = telemetry.ForensicsReport
	// PCForensics is one static branch's forensic profile.
	PCForensics = telemetry.PCForensics
	// ForensicsPatternStat is one history pattern's outcome histogram.
	ForensicsPatternStat = telemetry.PatternStat
	// FlightSnapshot is one flight-recorder capture around a mispredict
	// burst; FlightEvent is one recorded branch resolution.
	FlightSnapshot = telemetry.FlightSnapshot
	FlightEvent    = telemetry.FlightEvent

	// BranchExplanation is the human-readable diagnosis ExplainBranch
	// derives from a PCForensics profile; BranchVerdict is its
	// classification (warmup-dominated, diffuse-history, ...).
	BranchExplanation = analysis.Explanation
	BranchVerdict     = analysis.Verdict

	// ExperimentMonitor is the live-progress counter set of a grid run;
	// attach one via ExperimentOptions.Monitor and serve Handler() to get
	// /metrics, /progress and /debug/pprof while a suite runs.
	ExperimentMonitor = experiments.Monitor
	// MonitorSnapshot is a point-in-time view of an ExperimentMonitor:
	// the /progress payload and the monitor section of metrics.json.
	MonitorSnapshot = experiments.MonitorSnapshot
	// ForensicsDocument is the forensics.json schema (brexp -forensics).
	ForensicsDocument = experiments.ForensicsDocument
	// ExperimentForensicsRun is one run's forensics report with its grid
	// coordinates.
	ExperimentForensicsRun = experiments.ForensicsRun

	// BuildInfo is the binary's build provenance (module version, VCS
	// revision); it stamps metrics and forensics documents and backs the
	// -version flag of every binary.
	BuildInfo = buildinfo.Info

	// SpanTracer collects hierarchical timed spans across a run; hand its
	// root span to SimOptions.Span or ExperimentOptions.Span and it costs
	// nothing when absent (nil spans no-op). Behind brexp/brsim
	// -trace-out and -span-summary.
	SpanTracer = span.Tracer
	// Span is one timed region of a traced run; children nest
	// (suite → exp → task → capture/train/replay/forensics → report).
	Span = span.Span
	// SpanAttr is one key/value annotation on a Span.
	SpanAttr = span.Attr
)

// NewForensics returns a mispredict-forensics observer.
func NewForensics(cfg ForensicsConfig) *Forensics { return telemetry.NewForensics(cfg) }

// ExplainBranch diagnoses why one static branch mispredicts from its
// forensic profile (brsim -explain).
func ExplainBranch(p PCForensics) BranchExplanation { return analysis.Explain(p) }

// NewExperimentMonitor returns a live grid monitor with its clock
// started.
func NewExperimentMonitor() *ExperimentMonitor { return experiments.NewMonitor() }

// NewSpanTracer returns a span tracer; open a root span with Root and
// thread it through SimOptions.Span / ExperimentOptions.Span, then
// export with WriteChromeTrace (chrome://tracing JSON) or
// Summary().WriteText (aggregated phase-latency tree).
func NewSpanTracer() *SpanTracer { return span.New() }

// ReadBuildInfo reports the running binary's build provenance. It never
// fails: without embedded build info every field falls back to
// "unknown".
func ReadBuildInfo() BuildInfo { return buildinfo.Read() }

// NewLogger builds the structured logger behind the -log-format /
// -log-level flags: "text" (default) or "json" encoding at "debug",
// "info" (default), "warn" or "error". Unknown values are errors.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	return logx.New(w, format, level)
}

// Program is an assembled ISA program (a memory image plus labels) —
// write your own workloads in the repository's assembly language and run
// predictors over them.
type Program = asm.Program

// AssembleProgram assembles source text (see internal/asm for the
// syntax) into a runnable program.
func AssembleProgram(source string) (*Program, error) {
	return asm.Assemble(source)
}

// DisassembleProgram writes a listing of the program's text segment.
func DisassembleProgram(p *Program, w io.Writer) error {
	return asm.Disassemble(p, w)
}

// NewProgramSource executes an assembled program on a fresh CPU and
// streams its branch events. With loop set the program restarts (with a
// bumped run counter at cpu.RunCounterAddr) whenever it halts; without
// it the source ends at the first HALT.
func NewProgramSource(p *Program, loop bool) (Source, error) {
	c, err := cpu.New(p, 0)
	if err != nil {
		return nil, err
	}
	return cpu.NewSource(c, loop), nil
}

// OpCount is one row of an instruction-mix profile.
type OpCount struct {
	// Op is the mnemonic.
	Op string
	// Count is the number of retirements.
	Count uint64
	// Share is Count over all retirements.
	Share float64
}

// ProfileProgram executes prog once (or, with budget > 0, until budget
// conditional branches have retired, restarting as needed) with
// per-opcode profiling enabled and returns the instruction mix sorted by
// frequency.
func ProfileProgram(prog *Program, budget uint64) ([]OpCount, error) {
	c, err := cpu.New(prog, 0)
	if err != nil {
		return nil, err
	}
	c.EnableProfile()
	if budget == 0 {
		if _, err := c.Run(0); err != nil {
			return nil, err
		}
	} else {
		src := LimitConditional(cpu.NewSource(c, true), budget)
		for {
			if _, err := src.Next(); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
		}
	}
	counts := c.Profile()
	var total uint64
	for _, n := range counts {
		total += n
	}
	var out []OpCount
	for op, n := range counts {
		if n == 0 {
			continue
		}
		out = append(out, OpCount{Op: isa.Op(op).String(), Count: n, Share: float64(n) / float64(total)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out, nil
}
