package twolevel_test

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"twolevel"
)

func TestNewPredictorSchemes(t *testing.T) {
	for _, s := range []string{
		"GAg(HR(1,,8-sr),1xPHT(2^8,A2))",
		"PAg(BHT(512,4,10-sr),1xPHT(2^10,A3))",
		"PAp(BHT(256,4,6-sr),256xPHT(2^6,A2))",
		"BTB(BHT(512,4,LT),)",
		"AlwaysTaken",
		"BTFN",
	} {
		p, err := twolevel.NewPredictor(s)
		if err != nil {
			t.Errorf("NewPredictor(%q): %v", s, err)
			continue
		}
		b := twolevel.Branch{PC: 0x1000, Target: 0x800, Class: twolevel.Cond, Taken: true}
		pred := p.Predict(b)
		p.Update(b, pred)
	}
	// Training schemes are redirected.
	if _, err := twolevel.NewPredictor("Profiling"); err == nil ||
		!strings.Contains(err.Error(), "NewTrainedPredictor") {
		t.Errorf("Profiling should point at NewTrainedPredictor: %v", err)
	}
	if _, err := twolevel.NewPredictor("garbage("); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestTrainedPredictorEndToEnd(t *testing.T) {
	for _, s := range []string{
		"PSg(BHT(512,4,8-sr),1xPHT(2^8,PB))",
		"GSg(HR(1,,8-sr),1xPHT(2^8,PB))",
		"Profiling",
	} {
		train, err := twolevel.NewBenchmarkSource("espresso", true)
		if err != nil {
			t.Fatal(err)
		}
		p, err := twolevel.NewTrainedPredictor(s, twolevel.LimitConditional(train, 5000))
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		test, err := twolevel.NewBenchmarkSource("espresso", false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := twolevel.Simulate(p, test, twolevel.SimOptions{MaxCondBranches: 5000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Accuracy.Rate() < 0.7 {
			t.Errorf("%s: accuracy %.2f unexpectedly low", s, res.Accuracy.Rate())
		}
	}
	// Non-training schemes are redirected.
	src, _ := twolevel.NewBenchmarkSource("espresso", true)
	if _, err := twolevel.NewTrainedPredictor("BTFN", src); err == nil {
		t.Error("BTFN should not accept training")
	}
}

func TestBenchmarkRegistry(t *testing.T) {
	if len(twolevel.Benchmarks()) != 9 {
		t.Fatal("expected nine benchmarks")
	}
	if _, err := twolevel.BenchmarkByName("gcc"); err != nil {
		t.Fatal(err)
	}
	if _, err := twolevel.BenchmarkByName("nasa7"); err == nil {
		t.Fatal("nasa7 must not resolve")
	}
	if _, err := twolevel.NewBenchmarkSource("nope", false); err == nil {
		t.Fatal("unknown benchmark source accepted")
	}
}

func TestSimulateAccuracyReasonable(t *testing.T) {
	p, err := twolevel.NewPredictor("PAg(BHT(512,4,12-sr),1xPHT(2^12,A2))")
	if err != nil {
		t.Fatal(err)
	}
	src, err := twolevel.NewBenchmarkSource("eqntott", false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := twolevel.Simulate(p, src, twolevel.SimOptions{MaxCondBranches: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy.Predictions != 20_000 {
		t.Fatalf("predictions = %d", res.Accuracy.Predictions)
	}
	if res.Accuracy.Rate() < 0.95 {
		t.Fatalf("two-level on eqntott should be ~99%%: %.4f", res.Accuracy.Rate())
	}
}

func TestTraceRoundTripThroughFacade(t *testing.T) {
	src, err := twolevel.NewBenchmarkSource("matrix300", false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := twolevel.WriteTrace(&buf, twolevel.LimitConditional(src, 2000)); err != nil {
		t.Fatal(err)
	}
	rd, err := twolevel.OpenTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := twolevel.SummarizeTrace(rd)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ByClass[twolevel.Cond] < 2000 {
		t.Fatalf("trace lost conditionals: %d", stats.ByClass[twolevel.Cond])
	}

	// Text round trip.
	src2, _ := twolevel.NewBenchmarkSource("matrix300", false)
	var txt bytes.Buffer
	if err := twolevel.WriteTraceText(&txt, twolevel.LimitConditional(src2, 100)); err != nil {
		t.Fatal(err)
	}
	n := 0
	tr := twolevel.OpenTraceText(&txt)
	for {
		if _, err := tr.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("text trace empty")
	}
}

func TestEstimateCostFacade(t *testing.T) {
	bd, err := twolevel.EstimateCost("PAg(BHT(512,4,12-sr),1xPHT(2^12,A2))")
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total() <= 0 || bd.Total() != bd.BHT()+bd.PHT() {
		t.Fatalf("cost breakdown inconsistent: %+v", bd)
	}
	if _, err := twolevel.EstimateCost("BTFN"); err == nil {
		t.Fatal("static scheme should have no cost model")
	}
	custom, err := twolevel.EstimateCostWith(twolevel.CostParams{
		AddressBits: 30, BHTEntries: 1, HistoryBits: 8, PatternBits: 2, PHTSets: 1, Global: true,
	}, twolevel.DefaultCostConstants)
	if err != nil || custom.Total() <= 0 {
		t.Fatalf("EstimateCostWith: %v %v", custom, err)
	}
}

func TestRunExperimentFacade(t *testing.T) {
	ids := twolevel.ExperimentIDs()
	if len(ids) != 14 {
		t.Fatalf("experiment ids: %v", ids)
	}
	r, err := twolevel.RunExperiment("table2", twolevel.ExperimentOptions{CondBranches: 1000})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "eight queens") {
		t.Fatal("table2 should list the li data sets")
	}
}

func TestProgrammaticTwoLevel(t *testing.T) {
	p, err := twolevel.NewTwoLevel(twolevel.TwoLevelConfig{
		Variation:          twolevel.PAg,
		HistoryBits:        8,
		Automaton:          twolevel.A2,
		Entries:            512,
		Assoc:              4,
		SpeculativeHistory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	src, err := twolevel.NewBenchmarkSource("tomcatv", false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := twolevel.Simulate(p, src, twolevel.SimOptions{MaxCondBranches: 10_000, PipelineDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy.Rate() < 0.9 {
		t.Fatalf("speculative pipelined tomcatv: %.4f", res.Accuracy.Rate())
	}
}

func TestAssembleAndRunOwnProgram(t *testing.T) {
	prog, err := twolevel.AssembleProgram(`
		li r1, 500
	loop:
		addi r1, r1, -1
		bcnd ne0, r1, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	var listing strings.Builder
	if err := twolevel.DisassembleProgram(prog, &listing); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(listing.String(), "bcnd ne0, r1, loop") {
		t.Fatalf("listing missing branch:\n%s", listing.String())
	}
	src, err := twolevel.NewProgramSource(prog, false)
	if err != nil {
		t.Fatal(err)
	}
	p, err := twolevel.NewPredictor("GAg(HR(1,,8-sr),1xPHT(2^8,A2))")
	if err != nil {
		t.Fatal(err)
	}
	res, err := twolevel.Simulate(p, src, twolevel.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy.Predictions != 500 {
		t.Fatalf("predictions = %d, want 500", res.Accuracy.Predictions)
	}
	if res.Accuracy.Rate() < 0.99 {
		t.Fatalf("loop accuracy %.4f", res.Accuracy.Rate())
	}
}

func TestMultiplexSourceFacade(t *testing.T) {
	a, err := twolevel.NewBenchmarkSource("espresso", false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := twolevel.NewBenchmarkSource("eqntott", false)
	if err != nil {
		t.Fatal(err)
	}
	mux, err := twolevel.NewMultiplexSource([]twolevel.Source{a, b}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := twolevel.SummarizeTrace(twolevel.LimitConditional(mux, 10_000))
	if err != nil {
		t.Fatal(err)
	}
	// Both processes' (tagged) sites appear: more static conditionals
	// than either benchmark alone would show in this window.
	if stats.StaticCond() < 300 {
		t.Fatalf("multiplexed static sites = %d", stats.StaticCond())
	}
	if stats.Traps == 0 {
		t.Fatal("no switch traps in the multiplexed stream")
	}
	if _, err := twolevel.NewMultiplexSource([]twolevel.Source{a}, 0); err == nil {
		t.Fatal("single-source multiplex accepted")
	}
}

func TestGApThroughFacade(t *testing.T) {
	p, err := twolevel.NewPredictor("GAp(HR(1,,8-sr),512xPHT(2^8,A2))")
	if err != nil {
		t.Fatal(err)
	}
	src, err := twolevel.NewBenchmarkSource("doduc", false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := twolevel.Simulate(p, src, twolevel.SimOptions{MaxCondBranches: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy.Rate() < 0.6 {
		t.Fatalf("GAp accuracy %.4f", res.Accuracy.Rate())
	}
}

func TestProfileProgramFacade(t *testing.T) {
	prog, err := twolevel.AssembleProgram(`
		li r1, 50
	loop:
		addi r1, r1, -1
		bcnd ne0, r1, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := twolevel.ProfileProgram(prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) == 0 || mix[0].Count == 0 {
		t.Fatalf("empty mix: %+v", mix)
	}
	var share float64
	for _, e := range mix {
		share += e.Share
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("shares sum to %v", share)
	}
	// Budgeted profiling loops the program.
	mix2, err := twolevel.ProfileProgram(prog, 200)
	if err != nil {
		t.Fatal(err)
	}
	var bcnd uint64
	for _, e := range mix2 {
		if e.Op == "bcnd" {
			bcnd = e.Count
		}
	}
	if bcnd < 200 {
		t.Fatalf("budgeted profile saw %d bcnd, want >= 200", bcnd)
	}
}
