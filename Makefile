# Tier-1 verification entry points. CI runs the same commands
# (.github/workflows/ci.yml); `make verify` is the local equivalent of a
# green pipeline.

GO ?= go

.PHONY: build test race bench lint verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# lint runs go vet plus brlint, the repo's own invariant-checker suite
# (internal/lint). See DESIGN.md "Enforced invariants" for what each
# analyzer guards and how to suppress a finding.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/brlint ./...

verify: build lint test
