# Tier-1 verification entry points. CI runs the same commands
# (.github/workflows/ci.yml); `make verify` is the local equivalent of a
# green pipeline.

GO ?= go

.PHONY: build test race bench lint lint-json verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# lint runs go vet plus brlint, the repo's own invariant-checker suite
# (internal/lint). See DESIGN.md "Enforced invariants" for what each
# analyzer guards and how to suppress a finding.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/brlint ./...

# lint-json writes the machine-readable finding inventory (including
# suppressed findings, marked as such) to brlint.json — the same
# artifact CI's lint job uploads.
lint-json:
	$(GO) run ./cmd/brlint -json ./... > brlint.json

verify: build lint test
